//! In-run live telemetry plane: a std-only HTTP server over [`TcpListener`].
//!
//! Every observability surface before this module was post-hoc — traces,
//! profiles, and history records exist only after the run exits, while the
//! out-of-core SOM trainer can grind for minutes in silence. `live` turns
//! the process inside out: any long-running `repro` subcommand can host a
//! [`LiveServer`] (`--live [addr]`) and attach a [`LivePublisher`] per
//! study so scrape tooling and humans see progress *during* the run.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the [`crate::prom`] text exposition rendered from the
//!   latest [`TraceReport`] snapshots, plus two live-plane gauges:
//!   `hiermeans_som_warm_hit_rate{study=…}` (latest per-study epoch value)
//!   and `hiermeans_process_peak_rss_kb{study="process"}` sampled at scrape
//!   time from [`crate::memhook::peak_rss_kb`].
//! * `GET /healthz` — liveness; `200 ok` whenever the server accepts.
//! * `GET /readyz` — readiness; `503` until the first snapshot or progress
//!   event is published, `200 ready` afterwards.
//! * `GET /trace` — the current partial trace as a
//!   [`TraceDocument`] JSON body (same schema as `OBS_trace.json`).
//! * `GET /events` — a Server-Sent-Events stream of [`ProgressEvent`]
//!   records (per-epoch quality + `warm_hit_rate` + trailing-window ETA,
//!   streaming strip index/total, store ingestion accept/reject totals).
//!
//! # Never on the hot path
//!
//! Publishers never touch a socket: they serialize the event, take one
//! short [`Mutex`] on a bounded in-memory ring, and return. Connection
//! handling lives on dedicated threads that *read* from that state. The
//! hard invariant of every obs PR carries over — live telemetry on vs. off
//! changes no pipeline output, because publishing never writes into the
//! [`crate::Collector`]'s recorded state.
//!
//! The server shuts down deterministically: [`LiveServer::shutdown`] (also
//! run on drop) flags every loop, unblocks the acceptor with a loopback
//! connection, and joins the acceptor plus every connection thread.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::memhook;
use crate::prom;
use crate::report::{StudyTrace, TraceDocument, TraceReport};

/// Default bind address for `--live` when no explicit address is given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:9184";

/// Progress events retained for late SSE subscribers before the ring
/// drops its oldest entries.
const EVENT_RING_CAP: usize = 4096;

/// How often an SSE connection polls the ring for fresh events.
const SSE_POLL: Duration = Duration::from_millis(25);

/// Idle interval after which an SSE connection emits a keepalive comment
/// so clients can distinguish "no progress yet" from a dead server.
const SSE_KEEPALIVE: Duration = Duration::from_secs(2);

/// Trailing epochs averaged for the ETA estimate.
const ETA_WINDOW: usize = 8;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One record on the `GET /events` SSE stream, serialized as the `data:`
/// payload of each frame. Externally tagged — `{"Epoch": {...}}`,
/// `{"Strip": {...}}`, `{"Ingest": {...}}` — so clients dispatch on the
/// single top-level key without guessing from field presence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgressEvent {
    /// One finished training epoch.
    Epoch {
        /// Publisher label, usually the study name.
        study: String,
        /// Zero-based epoch index.
        epoch: usize,
        /// Total epochs the run will train.
        total_epochs: usize,
        /// Mean sample-to-BMU distance after this epoch, when the epoch
        /// was quality-sampled (`None` on unsampled epochs).
        #[serde(default)]
        quantization_error: Option<f64>,
        /// Epoch-warm BMU cache hit rate (`None` when the warm path was
        /// off or inapplicable, e.g. online training).
        #[serde(default)]
        warm_hit_rate: Option<f64>,
        /// Wall-clock duration of this epoch in microseconds.
        epoch_duration_us: u64,
        /// Estimated microseconds until training completes: mean of the
        /// trailing [`ETA_WINDOW`] epoch durations times remaining epochs.
        #[serde(default)]
        eta_us: Option<u64>,
    },
    /// One out-of-core strip loaded and folded during a streaming epoch.
    Strip {
        /// Publisher label, usually the study name.
        study: String,
        /// Zero-based epoch index the strip belongs to.
        epoch: usize,
        /// Zero-based strip index within the epoch.
        strip: usize,
        /// Strips per epoch (`ceil(rows / strip_rows)`).
        total_strips: usize,
    },
    /// Cumulative store-ingestion outcome totals after a batch advanced.
    Ingest {
        /// Publisher label, usually the store path.
        store: String,
        /// Submissions accepted and appended so far.
        accepted: u64,
        /// Submissions quarantined or rejected as malformed so far.
        rejected: u64,
    },
}

/// Per-endpoint request totals for the run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveRequestCounts {
    /// `GET /metrics` requests served.
    pub metrics: u64,
    /// `GET /healthz` requests served.
    pub healthz: u64,
    /// `GET /readyz` requests served.
    pub readyz: u64,
    /// `GET /trace` requests served.
    pub trace: u64,
    /// `GET /events` streams opened.
    pub events: u64,
}

/// End-of-run summary of the telemetry plane, stamped into
/// `OBS_trace.json` / `OBS_profile.json` when the run hosted `--live`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveSummary {
    /// The address the server actually bound (resolved, so `:0` binds
    /// report their ephemeral port).
    pub addr: String,
    /// Requests served per endpoint.
    pub requests: LiveRequestCounts,
    /// Progress events published into the SSE ring.
    pub events_published: u64,
}

/// Mutable server state shared between publishers and connections.
#[derive(Debug)]
struct LiveState {
    /// Flips once anything is published; gates `/readyz`.
    ready: bool,
    /// Worker count stamped into `/trace` documents.
    workers: usize,
    /// Latest snapshot per publisher label, insertion-ordered.
    studies: Vec<(String, TraceReport)>,
    /// Latest per-study `warm_hit_rate` from epoch events, for the
    /// `hiermeans_som_warm_hit_rate` live gauge.
    warm: Vec<(String, f64)>,
    /// Bounded ring of `(sequence, serialized event)`.
    events: VecDeque<(u64, String)>,
    /// Sequence number of the next event pushed.
    next_seq: u64,
}

#[derive(Debug)]
struct ServerShared {
    shutdown: AtomicBool,
    state: Mutex<LiveState>,
    metrics_requests: AtomicU64,
    healthz_requests: AtomicU64,
    readyz_requests: AtomicU64,
    trace_requests: AtomicU64,
    events_requests: AtomicU64,
    events_published: AtomicU64,
}

impl ServerShared {
    fn push_event(&self, event: &ProgressEvent) {
        let Ok(json) = serde_json::to_string(event) else {
            return;
        };
        let mut state = lock(&self.state);
        state.ready = true;
        if let ProgressEvent::Epoch {
            study,
            warm_hit_rate: Some(rate),
            ..
        } = event
        {
            match state.warm.iter_mut().find(|(label, _)| label == study) {
                Some(entry) => entry.1 = *rate,
                None => state.warm.push((study.clone(), *rate)),
            }
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push_back((seq, json));
        while state.events.len() > EVENT_RING_CAP {
            state.events.pop_front();
        }
        drop(state);
        self.events_published.fetch_add(1, Ordering::Relaxed);
    }
}

/// Trailing-window epoch-duration history backing the ETA estimate.
#[derive(Debug, Default)]
struct EtaWindow {
    durations: VecDeque<u64>,
}

impl EtaWindow {
    /// Records one epoch duration and returns the ETA for `remaining`
    /// further epochs.
    fn push(&mut self, duration_us: u64, remaining: usize) -> u64 {
        self.durations.push_back(duration_us);
        while self.durations.len() > ETA_WINDOW {
            self.durations.pop_front();
        }
        let sum: u64 = self.durations.iter().sum();
        let mean = sum / self.durations.len().max(1) as u64;
        mean.saturating_mul(remaining as u64)
    }
}

/// Cloneable handle a [`crate::Collector`] (or ingest loop) publishes
/// through. Cheap: every publish is a serialize plus one short mutex.
#[derive(Debug, Clone)]
pub struct LivePublisher {
    shared: Arc<ServerShared>,
    label: String,
    eta: Arc<Mutex<EtaWindow>>,
    /// Cumulative `(accepted, rejected)` ingestion totals; callers pass
    /// deltas so hooks need no shared counters of their own.
    ingest: Arc<Mutex<(u64, u64)>>,
}

impl LivePublisher {
    /// The label events from this publisher carry (study or store name).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Replaces (or installs) this publisher's [`TraceReport`] snapshot,
    /// the body behind `/trace` and `/metrics`.
    pub fn publish_snapshot(&self, report: TraceReport) {
        let mut state = lock(&self.shared.state);
        state.ready = true;
        match state
            .studies
            .iter_mut()
            .find(|(label, _)| *label == self.label)
        {
            Some(entry) => entry.1 = report,
            None => state.studies.push((self.label.clone(), report)),
        }
    }

    /// Publishes one finished epoch with a trailing-window ETA.
    pub fn publish_epoch(
        &self,
        epoch: usize,
        total_epochs: usize,
        quantization_error: Option<f64>,
        warm_hit_rate: Option<f64>,
        epoch_duration_us: u64,
    ) {
        let remaining = total_epochs.saturating_sub(epoch + 1);
        let eta_us = lock(&self.eta).push(epoch_duration_us, remaining);
        self.shared.push_event(&ProgressEvent::Epoch {
            study: self.label.clone(),
            epoch,
            total_epochs,
            quantization_error,
            warm_hit_rate,
            epoch_duration_us,
            eta_us: Some(eta_us),
        });
    }

    /// Publishes one out-of-core strip advance.
    pub fn publish_strip(&self, epoch: usize, strip: usize, total_strips: usize) {
        self.shared.push_event(&ProgressEvent::Strip {
            study: self.label.clone(),
            epoch,
            strip,
            total_strips,
        });
    }

    /// Accumulates ingestion deltas and publishes the running totals.
    pub fn publish_ingest(&self, accepted_delta: u64, rejected_delta: u64) {
        let (accepted, rejected) = {
            let mut totals = lock(&self.ingest);
            totals.0 += accepted_delta;
            totals.1 += rejected_delta;
            *totals
        };
        self.shared.push_event(&ProgressEvent::Ingest {
            store: self.label.clone(),
            accepted,
            rejected,
        });
    }
}

/// The in-process telemetry server. Owns the acceptor thread and every
/// connection thread; [`LiveServer::shutdown`] (or drop) joins them all.
#[derive(Debug)]
pub struct LiveServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl LiveServer {
    /// Binds `addr` (supports `:0` for an ephemeral port) and starts the
    /// acceptor thread.
    ///
    /// # Errors
    ///
    /// Returns a message when the bind or thread spawn fails (address in
    /// use, permission, resolver).
    pub fn bind(addr: &str, workers: usize) -> Result<Self, String> {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("live: cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("live: no local addr for {addr}: {e}"))?;
        let shared = Arc::new(ServerShared {
            shutdown: AtomicBool::new(false),
            state: Mutex::new(LiveState {
                ready: false,
                workers,
                studies: Vec::new(),
                warm: Vec::new(),
                events: VecDeque::new(),
                next_seq: 0,
            }),
            metrics_requests: AtomicU64::new(0),
            healthz_requests: AtomicU64::new(0),
            readyz_requests: AtomicU64::new(0),
            trace_requests: AtomicU64::new(0),
            events_requests: AtomicU64::new(0),
            events_published: AtomicU64::new(0),
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&connections);
        let acceptor = std::thread::Builder::new()
            .name("obs-live-server".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_conns))
            .map_err(|e| format!("live: cannot spawn acceptor: {e}"))?;
        Ok(Self {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The resolved bound address (real port even for `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A publisher whose events and snapshots carry `label`.
    #[must_use]
    pub fn publisher(&self, label: &str) -> LivePublisher {
        LivePublisher {
            shared: Arc::clone(&self.shared),
            label: label.to_owned(),
            eta: Arc::new(Mutex::new(EtaWindow::default())),
            ingest: Arc::new(Mutex::new((0, 0))),
        }
    }

    /// The end-of-run summary stamped into trace/profile artifacts.
    #[must_use]
    pub fn summary(&self) -> LiveSummary {
        LiveSummary {
            addr: self.addr.to_string(),
            requests: LiveRequestCounts {
                metrics: self.shared.metrics_requests.load(Ordering::Relaxed),
                healthz: self.shared.healthz_requests.load(Ordering::Relaxed),
                readyz: self.shared.readyz_requests.load(Ordering::Relaxed),
                trace: self.shared.trace_requests.load(Ordering::Relaxed),
                events: self.shared.events_requests.load(Ordering::Relaxed),
            },
            events_published: self.shared.events_published.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes every open stream, and joins all server
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept()`; a throwaway loopback
        // connection wakes it so it can observe the flag and exit.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)) {
            drop(stream);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.connections));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("obs-live-conn".to_owned())
            .spawn(move || handle_connection(&conn_shared, stream));
        if let Ok(handle) = spawned {
            let mut conns = lock(connections);
            // Reap finished connections so the handle list stays bounded
            // over a long run instead of growing per request.
            let mut keep = Vec::with_capacity(conns.len() + 1);
            for old in conns.drain(..) {
                if old.is_finished() {
                    let _ = old.join();
                } else {
                    keep.push(old);
                }
            }
            keep.push(handle);
            *conns = keep;
        }
    }
}

/// Reads one request, routes it, and answers with `Connection: close`.
fn handle_connection(shared: &ServerShared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so the client sees its request fully consumed.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(
            stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
        return;
    }
    match path {
        "/metrics" => {
            shared.metrics_requests.fetch_add(1, Ordering::Relaxed);
            let body = metrics_text(shared);
            respond(
                stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            shared.healthz_requests.fetch_add(1, Ordering::Relaxed);
            respond(stream, 200, "text/plain; charset=utf-8", "ok\n");
        }
        "/readyz" => {
            shared.readyz_requests.fetch_add(1, Ordering::Relaxed);
            if lock(&shared.state).ready {
                respond(stream, 200, "text/plain; charset=utf-8", "ready\n");
            } else {
                respond(stream, 503, "text/plain; charset=utf-8", "not ready\n");
            }
        }
        "/trace" => {
            shared.trace_requests.fetch_add(1, Ordering::Relaxed);
            let body = trace_json(shared);
            respond(stream, 200, "application/json", &body);
        }
        "/events" => {
            shared.events_requests.fetch_add(1, Ordering::Relaxed);
            stream_events(shared, stream);
        }
        _ => respond(stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn respond(mut stream: TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// The current snapshot document: same shape as `OBS_trace.json`.
fn snapshot_document(shared: &ServerShared) -> TraceDocument {
    let state = lock(&shared.state);
    let studies = state
        .studies
        .iter()
        .map(|(label, trace)| StudyTrace {
            label: label.clone(),
            trace: trace.clone(),
        })
        .collect();
    TraceDocument::new(state.workers, studies)
}

fn trace_json(shared: &ServerShared) -> String {
    serde_json::to_string(&snapshot_document(shared)).unwrap_or_else(|_| "{}".to_owned())
}

fn metrics_text(shared: &ServerShared) -> String {
    use std::fmt::Write as _;
    let document = snapshot_document(shared);
    let warm: Vec<(String, f64)> = lock(&shared.state).warm.clone();
    let mut out = prom::to_prometheus(&document);
    if !warm.is_empty() {
        let _ = writeln!(out, "# TYPE hiermeans_som_warm_hit_rate gauge");
        for (study, rate) in &warm {
            let _ = writeln!(
                out,
                "hiermeans_som_warm_hit_rate{{study=\"{}\"}} {rate}",
                prom::escape(study)
            );
        }
    }
    // The per-study `hiermeans_process_peak_rss_kb` gauge only exists when
    // a snapshot carried a memory block; the live plane always exposes the
    // process-wide value so RSS is scrapeable regardless of study config.
    let study_rss = document.studies.iter().any(|s| s.trace.memory.is_some());
    if !study_rss {
        if let Some(kb) = memhook::peak_rss_kb() {
            let _ = writeln!(out, "# TYPE hiermeans_process_peak_rss_kb gauge");
            let _ = writeln!(
                out,
                "hiermeans_process_peak_rss_kb{{study=\"process\"}} {kb}"
            );
        }
    }
    out
}

/// Streams the event ring as SSE frames until shutdown or client close.
fn stream_events(shared: &ServerShared, mut stream: TcpStream) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    // Replay the retained backlog first, then follow the ring.
    let mut cursor = lock(&shared.state)
        .events
        .front()
        .map_or(0, |(seq, _)| *seq);
    let mut idle = Duration::ZERO;
    loop {
        let fresh: Vec<(u64, String)> = {
            let state = lock(&shared.state);
            state
                .events
                .iter()
                .filter(|(seq, _)| *seq >= cursor)
                .cloned()
                .collect()
        };
        if fresh.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            idle += SSE_POLL;
            if idle >= SSE_KEEPALIVE {
                idle = Duration::ZERO;
                if stream.write_all(b": keepalive\n\n").is_err() || stream.flush().is_err() {
                    return;
                }
            }
            std::thread::sleep(SSE_POLL);
            continue;
        }
        idle = Duration::ZERO;
        for (seq, json) in &fresh {
            cursor = seq + 1;
            let frame = format!("id: {seq}\ndata: {json}\n\n");
            if stream.write_all(frame.as_bytes()).is_err() {
                return;
            }
        }
        if stream.flush().is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// One-shot blocking `GET` against a live server; returns
/// `(status, body)`. Shared by `repro watch`, tests, and CI probes.
///
/// # Errors
///
/// Returns a message when the connection, write, or response parse fails.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("live: cannot connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("live: request write failed: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("live: response read failed: {e}"))?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("live: malformed response from {addr}{path}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Blocking reader over a server's `GET /events` SSE stream. Used by
/// `repro watch` and the integration tests.
#[derive(Debug)]
pub struct SseClient {
    reader: BufReader<TcpStream>,
}

impl SseClient {
    /// Opens the `/events` stream and consumes the response headers.
    ///
    /// # Errors
    ///
    /// Returns a message when the connection or handshake fails.
    pub fn connect(addr: &str) -> Result<Self, String> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| format!("live: cannot connect {addr}: {e}"))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let request =
            format!("GET /events HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n");
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("live: request write failed: {e}"))?;
        let mut reader = BufReader::new(stream);
        loop {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("live: SSE handshake read failed: {e}"))?;
            if n == 0 {
                return Err("live: SSE stream closed during handshake".to_owned());
            }
            if line.trim().is_empty() {
                break;
            }
        }
        Ok(Self { reader })
    }

    /// The next `data:` payload, skipping keepalives and `id:` lines.
    /// `Ok(None)` when the stream ends (server shutdown) or goes silent
    /// past the read timeout.
    ///
    /// # Errors
    ///
    /// Returns a message on unexpected transport failures.
    pub fn next_event(&mut self) -> Result<Option<String>, String> {
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    if let Some(payload) = line.trim_end().strip_prefix("data: ") {
                        return Ok(Some(payload.to_owned()));
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(format!("live: SSE read failed: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ephemeral() -> LiveServer {
        LiveServer::bind("127.0.0.1:0", 3).expect("ephemeral bind")
    }

    #[test]
    fn healthz_answers_and_unknown_paths_404() {
        let server = ephemeral();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn readyz_flips_on_first_publish() {
        let server = ephemeral();
        let addr = server.addr().to_string();
        assert_eq!(http_get(&addr, "/readyz").unwrap().0, 503);
        server
            .publisher("s")
            .publish_epoch(0, 4, Some(1.0), None, 500);
        assert_eq!(http_get(&addr, "/readyz").unwrap().0, 200);
    }

    #[test]
    fn metrics_serves_snapshot_and_live_gauges() {
        let server = ephemeral();
        let addr = server.addr().to_string();
        let publisher = server.publisher("study\"a\nb\\c");
        let collector = crate::Collector::enabled();
        collector.add(crate::Counter::BmuSearches, 7);
        publisher.publish_snapshot(collector.report().unwrap());
        publisher.publish_epoch(0, 2, Some(0.5), Some(0.75), 1_000);
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("hiermeans_bmu_searches"), "{body}");
        // Live gauge carries the latest epoch hit rate, label escaped.
        assert!(
            body.contains("hiermeans_som_warm_hit_rate{study=\"study\\\"a\\nb\\\\c\"} 0.75"),
            "{body}"
        );
        // No study memory block: the process-wide RSS gauge fills in.
        assert!(
            body.contains("hiermeans_process_peak_rss_kb{study=\"process\"}"),
            "{body}"
        );
    }

    #[test]
    fn trace_returns_current_document_json() {
        let server = ephemeral();
        let addr = server.addr().to_string();
        let publisher = server.publisher("partial");
        let collector = crate::Collector::enabled();
        {
            let _span = collector.span("demo.stage");
        }
        publisher.publish_snapshot(collector.report().unwrap());
        let (status, body) = http_get(&addr, "/trace").unwrap();
        assert_eq!(status, 200);
        let document: TraceDocument = serde_json::from_str(&body).unwrap();
        assert_eq!(document.workers, 3);
        assert_eq!(document.studies.len(), 1);
        assert_eq!(document.studies[0].label, "partial");
        assert_eq!(document.studies[0].trace.spans[0].name, "demo.stage");
    }

    #[test]
    fn sse_replays_backlog_and_follows_new_events() {
        let server = ephemeral();
        let addr = server.addr().to_string();
        let publisher = server.publisher("s");
        publisher.publish_strip(0, 0, 4);
        let mut client = SseClient::connect(&addr).unwrap();
        let first: ProgressEvent =
            serde_json::from_str(&client.next_event().unwrap().unwrap()).unwrap();
        assert_eq!(
            first,
            ProgressEvent::Strip {
                study: "s".into(),
                epoch: 0,
                strip: 0,
                total_strips: 4
            }
        );
        publisher.publish_ingest(2, 1);
        let second: ProgressEvent =
            serde_json::from_str(&client.next_event().unwrap().unwrap()).unwrap();
        assert_eq!(
            second,
            ProgressEvent::Ingest {
                store: "s".into(),
                accepted: 2,
                rejected: 1
            }
        );
    }

    #[test]
    fn epoch_eta_averages_the_trailing_window() {
        let server = ephemeral();
        let addr = server.addr().to_string();
        let publisher = server.publisher("s");
        publisher.publish_epoch(0, 3, None, None, 100);
        publisher.publish_epoch(1, 3, None, None, 300);
        let mut client = SseClient::connect(&addr).unwrap();
        let _first = client.next_event().unwrap().unwrap();
        let second: ProgressEvent =
            serde_json::from_str(&client.next_event().unwrap().unwrap()).unwrap();
        let ProgressEvent::Epoch { eta_us, .. } = second else {
            panic!("expected epoch event: {second:?}");
        };
        // Mean of (100, 300) = 200 us, one epoch remaining.
        assert_eq!(eta_us, Some(200));
    }

    #[test]
    fn shutdown_joins_threads_and_closes_streams() {
        let mut server = ephemeral();
        let addr = server.addr().to_string();
        let mut client = SseClient::connect(&addr).unwrap();
        server.shutdown();
        // Idempotent.
        server.shutdown();
        assert_eq!(client.next_event().unwrap(), None);
        assert!(http_get(&addr, "/healthz").is_err());
    }

    #[test]
    fn summary_counts_requests_and_events() {
        let server = ephemeral();
        let addr = server.addr().to_string();
        server.publisher("s").publish_strip(0, 0, 1);
        let _ = http_get(&addr, "/healthz").unwrap();
        let _ = http_get(&addr, "/metrics").unwrap();
        let _ = http_get(&addr, "/metrics").unwrap();
        let summary = server.summary();
        assert_eq!(summary.addr, addr);
        assert_eq!(summary.requests.healthz, 1);
        assert_eq!(summary.requests.metrics, 2);
        assert_eq!(summary.events_published, 1);
        let round: LiveSummary =
            serde_json::from_str(&serde_json::to_string(&summary).unwrap()).unwrap();
        assert_eq!(round, summary);
    }

    #[test]
    fn progress_event_serde_is_externally_tagged() {
        let event = ProgressEvent::Epoch {
            study: "sar_machine_a".into(),
            epoch: 3,
            total_epochs: 10,
            quantization_error: Some(0.25),
            warm_hit_rate: Some(0.9),
            epoch_duration_us: 1234,
            eta_us: Some(8638),
        };
        let json = serde_json::to_string(&event).unwrap();
        assert!(json.starts_with("{\"Epoch\":"), "{json}");
        let round: ProgressEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(round, event);
    }

    #[test]
    fn event_ring_drops_oldest_past_capacity() {
        let server = ephemeral();
        let publisher = server.publisher("s");
        for i in 0..(EVENT_RING_CAP + 10) {
            publisher.publish_strip(0, i, EVENT_RING_CAP + 10);
        }
        let state = lock(&server.shared.state);
        assert_eq!(state.events.len(), EVENT_RING_CAP);
        assert_eq!(state.events.front().unwrap().0, 10);
        assert_eq!(state.next_seq, (EVENT_RING_CAP + 10) as u64);
    }
}
