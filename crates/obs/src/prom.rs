//! Prometheus text-exposition export of trace metrics.
//!
//! `repro trace --prom <file>` writes this rendering alongside the JSON
//! artifact so scrape-style tooling can consume counters and histograms
//! without a JSON post-processing step. One time series per paper study,
//! labelled `study="<label>"`; histogram buckets are cumulative with an
//! explicit `+Inf` bucket, per the exposition-format convention.

use std::fmt::Write as _;

use crate::metrics::HistogramExport;
use crate::report::TraceDocument;

const PREFIX: &str = "hiermeans_";

/// Renders every study's counters, histograms, and lane parallel-efficiency
/// gauges in Prometheus text exposition format.
#[must_use]
pub fn to_prometheus(doc: &TraceDocument) -> String {
    let mut out = String::new();
    let Some(first) = doc.studies.first() else {
        return out;
    };
    for (i, counter) in first.trace.counters.iter().enumerate() {
        let _ = writeln!(out, "# TYPE {PREFIX}{} counter", counter.name);
        for s in &doc.studies {
            if let Some(c) = s.trace.counters.get(i) {
                let _ = writeln!(
                    out,
                    "{PREFIX}{}{{study=\"{}\"}} {}",
                    c.name,
                    escape(&s.label),
                    c.value
                );
            }
        }
    }
    for (i, histogram) in first.trace.histograms.iter().enumerate() {
        let _ = writeln!(out, "# TYPE {PREFIX}{} histogram", histogram.name);
        for s in &doc.studies {
            if let Some(h) = s.trace.histograms.get(i) {
                render_histogram(&mut out, h, &s.label);
            }
        }
    }
    let mut wrote_gauge_type = false;
    for s in &doc.studies {
        for lane_set in &s.trace.lanes {
            if !wrote_gauge_type {
                let _ = writeln!(out, "# TYPE {PREFIX}parallel_efficiency gauge");
                wrote_gauge_type = true;
            }
            let _ = writeln!(
                out,
                "{PREFIX}parallel_efficiency{{study=\"{}\",stage=\"{}\"}} {}",
                escape(&s.label),
                escape(&lane_set.stage),
                fmt_f64(lane_set.parallel_efficiency)
            );
        }
    }
    let mut wrote_warm_type = false;
    for s in &doc.studies {
        let hits = s.trace.counter("bmu_warm_hits").unwrap_or(0);
        let rescans = s.trace.counter("bmu_exact_rescans").unwrap_or(0);
        if hits + rescans == 0 {
            continue;
        }
        if !wrote_warm_type {
            let _ = writeln!(out, "# TYPE {PREFIX}bmu_warm_hit_rate gauge");
            wrote_warm_type = true;
        }
        let _ = writeln!(
            out,
            "{PREFIX}bmu_warm_hit_rate{{study=\"{}\"}} {}",
            escape(&s.label),
            fmt_f64(hits as f64 / (hits + rescans) as f64)
        );
    }
    let mut wrote_rss_type = false;
    for s in &doc.studies {
        if let Some(memory) = &s.trace.memory {
            if !wrote_rss_type {
                let _ = writeln!(out, "# TYPE {PREFIX}process_peak_rss_kb gauge");
                wrote_rss_type = true;
            }
            let _ = writeln!(
                out,
                "{PREFIX}process_peak_rss_kb{{study=\"{}\"}} {}",
                escape(&s.label),
                memory.peak_rss_kb
            );
        }
    }
    let mut wrote_peak_type = false;
    for s in &doc.studies {
        if let Some(memory) = &s.trace.memory {
            for stage in &memory.stages {
                if !wrote_peak_type {
                    let _ = writeln!(out, "# TYPE {PREFIX}memory_peak_bytes gauge");
                    wrote_peak_type = true;
                }
                let _ = writeln!(
                    out,
                    "{PREFIX}memory_peak_bytes{{study=\"{}\",stage=\"{}\"}} {}",
                    escape(&s.label),
                    escape(&stage.stage),
                    stage.peak_bytes
                );
            }
        }
    }
    out
}

fn render_histogram(out: &mut String, h: &HistogramExport, study: &str) {
    let study = escape(study);
    let mut cumulative = 0u64;
    for (bucket, count) in h.counts.iter().enumerate() {
        cumulative += count;
        let le = match h.boundaries.get(bucket) {
            Some(b) => fmt_f64(*b),
            None => "+Inf".to_owned(),
        };
        let _ = writeln!(
            out,
            "{PREFIX}{}_bucket{{study=\"{study}\",le=\"{le}\"}} {cumulative}",
            h.name
        );
    }
    let _ = writeln!(
        out,
        "{PREFIX}{}_sum{{study=\"{study}\"}} {}",
        h.name,
        fmt_f64(h.sum)
    );
    let _ = writeln!(
        out,
        "{PREFIX}{}_count{{study=\"{study}\"}} {}",
        h.name, h.total
    );
}

/// Prometheus floats: plain decimal, no exponent needed for our ranges;
/// integral values render without a trailing `.0` either way is accepted,
/// so the default `Display` is fine.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Escapes a label value per the exposition format: backslash first (so
/// introduced escapes are not re-escaped), then double quote, then
/// newline. Shared with the live plane's scrape-time gauges.
pub(crate) fn escape(label: &str) -> String {
    label
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{StudyTrace, TraceDocument};
    use crate::{Collector, Counter, HistogramId, LaneBuf};

    fn sample_document() -> TraceDocument {
        let c = Collector::enabled();
        {
            let _root = c.span("pipeline");
            c.add(Counter::BmuSearches, 13);
            c.record(HistogramId::MergeDistance, 0.3);
            c.record(HistogramId::MergeDistance, 3.0);
            let mut buf = LaneBuf::new();
            buf.record(0, 0, 0, 10);
            buf.end_run();
            c.attach_lanes("score.sweep", 1, &buf);
        }
        TraceDocument::new(
            1,
            vec![StudyTrace {
                label: "sar_machine_a".into(),
                trace: c.report().expect("enabled"),
            }],
        )
    }

    #[test]
    fn renders_counters_histograms_and_gauges() {
        let text = to_prometheus(&sample_document());
        assert!(text.contains("# TYPE hiermeans_bmu_searches counter"));
        assert!(text.contains("hiermeans_bmu_searches{study=\"sar_machine_a\"} 13"));
        assert!(text.contains("# TYPE hiermeans_merge_distance histogram"));
        // 0.3 <= 0.5 and 3.0 <= 4.0: cumulative buckets end at 2.
        assert!(
            text.contains("hiermeans_merge_distance_bucket{study=\"sar_machine_a\",le=\"0.25\"} 0")
        );
        assert!(
            text.contains("hiermeans_merge_distance_bucket{study=\"sar_machine_a\",le=\"0.5\"} 1")
        );
        assert!(
            text.contains("hiermeans_merge_distance_bucket{study=\"sar_machine_a\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("hiermeans_merge_distance_count{study=\"sar_machine_a\"} 2"));
        assert!(text.contains("# TYPE hiermeans_parallel_efficiency gauge"));
        assert!(text.contains(
            "hiermeans_parallel_efficiency{study=\"sar_machine_a\",stage=\"score.sweep\"} 1"
        ));
    }

    #[test]
    fn cumulative_buckets_are_monotonic() {
        let text = to_prometheus(&sample_document());
        let mut last = 0;
        for line in text
            .lines()
            .filter(|l| l.contains("merge_distance_bucket{"))
        {
            let value: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap();
            assert!(value >= last, "{line}");
            last = value;
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn warm_hit_rate_gauge_present_iff_warm_counters_fired() {
        // No warm counters -> no gauge at all.
        let off = to_prometheus(&sample_document());
        assert!(!off.contains("bmu_warm_hit_rate"));

        let c = Collector::enabled();
        {
            let _root = c.span("pipeline");
            c.add(Counter::BmuWarmHits, 3);
            c.add(Counter::BmuExactRescans, 1);
        }
        let doc = TraceDocument::new(
            1,
            vec![StudyTrace {
                label: "sar_machine_a".into(),
                trace: c.report().expect("enabled"),
            }],
        );
        let text = to_prometheus(&doc);
        assert!(text.contains("# TYPE hiermeans_bmu_warm_hit_rate gauge"));
        assert!(text.contains("hiermeans_bmu_warm_hit_rate{study=\"sar_machine_a\"} 0.75"));
    }

    #[test]
    fn empty_document_renders_empty() {
        assert!(to_prometheus(&TraceDocument::new(1, vec![])).is_empty());
    }

    #[test]
    fn memory_gauges_follow_the_exposition_shape() {
        let mut doc = sample_document();
        doc.studies[0].trace.memory = Some(crate::report::MemoryReport {
            peak_rss_kb: 54321,
            stages: vec![crate::report::StageMemory {
                span: 0,
                stage: "pipeline.som".into(),
                allocs: 10,
                bytes: 2048,
                peak_bytes: 1536,
            }],
        });
        let text = to_prometheus(&doc);
        assert!(text.contains("# TYPE hiermeans_process_peak_rss_kb gauge"));
        assert!(text.contains("hiermeans_process_peak_rss_kb{study=\"sar_machine_a\"} 54321"));
        assert!(text.contains("# TYPE hiermeans_memory_peak_bytes gauge"));
        assert!(text.contains(
            "hiermeans_memory_peak_bytes{study=\"sar_machine_a\",stage=\"pipeline.som\"} 1536"
        ));
        // Every TYPE declaration precedes its first sample, and every
        // non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(series.starts_with("hiermeans_"), "{line}");
            assert!(series.contains("{study=\""), "{line}");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
        // Memory gauges are absent when telemetry was off.
        let off = to_prometheus(&sample_document());
        assert!(!off.contains("process_peak_rss_kb"));
        assert!(!off.contains("memory_peak_bytes"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        // Newlines must escape to the two characters `\n`, or the sample
        // line splits and the exposition stops parsing.
        assert_eq!(escape("line1\nline2"), "line1\\nline2");
        // Backslash escapes first: a literal `\n` in the label must not
        // collapse into an escaped newline.
        assert_eq!(escape("raw\\nseq"), "raw\\\\nseq");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn hostile_study_label_stays_one_line_per_sample() {
        let c = Collector::enabled();
        c.add(Counter::BmuSearches, 5);
        let doc = TraceDocument::new(
            1,
            vec![StudyTrace {
                label: "evil\"study\\with\nnewline".into(),
                trace: c.report().unwrap(),
            }],
        );
        let text = to_prometheus(&doc);
        assert!(
            text.contains("{study=\"evil\\\"study\\\\with\\nnewline\"}"),
            "{text}"
        );
        // The hostile label must not have produced an unparseable line:
        // every non-comment line still splits into `series value`.
        for line in text
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
        {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(series.starts_with("hiermeans_"), "{line}");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }
}
