//! Stage spans: RAII guards with monotonic timing and a nested hierarchy.
//!
//! A [`SpanGuard`] is opened through [`crate::Collector::span`] and closes
//! on drop, stamping the span's duration from a monotonic clock. Spans
//! nest: a span opened while another is still open becomes its child, which
//! is how the exported trace shows `pipeline` containing `pipeline.som`
//! containing per-epoch work. Guards are meant for the coordinating thread
//! of each stage; hot worker loops use [`crate::CounterBuf`] instead, so
//! worker scheduling can never reshape the span tree.

use serde::{Deserialize, Serialize};

use crate::memhook::{MemStats, ThreadScope};
use crate::Collector;

/// One recorded span (internal arena entry).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpanRecord {
    pub(crate) name: &'static str,
    pub(crate) parent: Option<usize>,
    pub(crate) start_us: u64,
    pub(crate) duration_us: u64,
    pub(crate) closed: bool,
    /// Memory attribution, stamped at close when the collector has memory
    /// telemetry hooked.
    pub(crate) mem: Option<MemStats>,
}

/// RAII guard for one span; the span ends when the guard drops.
///
/// Obtained from [`Collector::span`]. When the collector is disabled the
/// guard is inert: no allocation, no lock, no clock read. When memory
/// telemetry is hooked the guard carries the span's [`ThreadScope`], which
/// pins the guard to the thread that opened it — exactly the discipline
/// spans already follow (stage spans live on the coordinating thread).
#[derive(Debug)]
#[must_use = "a span ends when its guard drops; binding it to `_` ends it immediately"]
pub struct SpanGuard {
    pub(crate) collector: Collector,
    pub(crate) index: Option<usize>,
    pub(crate) mem: Option<ThreadScope>,
}

impl SpanGuard {
    /// The arena index of this span, if the collector is enabled. Exposed
    /// for tests and the report layer.
    #[must_use]
    pub fn index(&self) -> Option<usize> {
        self.index
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Close the memory scope first so the collector's own end-of-span
        // bookkeeping is not charged to this span.
        let mem = self.mem.take().map(ThreadScope::close);
        if let Some(index) = self.index.take() {
            self.collector.end_span(index, mem);
        }
    }
}

/// One exported span of the trace, in open order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanExport {
    /// Arena index (also the position in the export vector).
    pub id: usize,
    /// Index of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Stage name, e.g. `pipeline.som`.
    pub name: String,
    /// Microseconds from the collector's origin to the span opening.
    pub start_us: u64,
    /// Span duration in microseconds (0 if the guard never dropped).
    pub duration_us: u64,
}

impl SpanExport {
    /// Nesting depth computed by walking `parent` links through `spans`.
    #[must_use]
    pub fn depth_in(&self, spans: &[SpanExport]) -> usize {
        let mut depth = 0;
        let mut cursor = self.parent;
        while let Some(p) = cursor {
            depth += 1;
            cursor = spans.get(p).and_then(|s| s.parent);
        }
        depth
    }
}
