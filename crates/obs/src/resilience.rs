//! Self-healing telemetry: typed records of retries, degradations, and
//! injected faults.
//!
//! The resilient pipeline driver (`hiermeans-core`) and the fault-injection
//! harness both narrate what they did through [`ResilienceEvent`]s recorded
//! on the run's [`crate::Collector`]. The events land in the
//! schema-versioned `resilience` field of [`crate::TraceReport`], so a
//! trace diff shows not just *what* the pipeline computed but *how many
//! tries it took* and *whether it fell back* — silent degradation is the
//! failure mode this field exists to prevent.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// One self-healing event, in record order.
///
/// Serialized with an internally tagged `kind` discriminant so the JSON is
/// self-describing:
/// `{"kind":"retry","attempt":2,"epochs":400,"seed":123}` — implemented by
/// hand because the vendored serde shim derives external tagging only.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilienceEvent {
    /// A SOM training attempt completed and its convergence was judged.
    Attempt {
        /// 1-based attempt number.
        attempt: usize,
        /// Epoch budget this attempt trained with.
        epochs: usize,
        /// Codebook-initialization seed this attempt used.
        seed: u64,
        /// Whether the convergence gate passed.
        converged: bool,
        /// The verdict's human-readable reason.
        reason: String,
    },
    /// A retry was scheduled with deterministically escalated parameters.
    Retry {
        /// 1-based number of the attempt about to run.
        attempt: usize,
        /// Escalated epoch budget.
        epochs: usize,
        /// Reseeded codebook-initialization seed.
        seed: u64,
    },
    /// Every attempt failed the gate; the pipeline fell back.
    Degraded {
        /// How many attempts were exhausted first.
        after_attempts: usize,
        /// The fallback taken, e.g. `raw_space`.
        mode: String,
    },
    /// The harness injected a fault (absent outside fault-injection runs).
    FaultInjected {
        /// Stable fault label, e.g. `nan_cell`, `worker_panic`,
        /// `forced_non_convergence`.
        fault: String,
        /// What exactly was perturbed.
        detail: String,
    },
    /// An injected fault was absorbed: the pipeline recovered or surfaced
    /// the expected typed error instead of crashing.
    Recovered {
        /// The fault label this recovery answers.
        fault: String,
        /// How the fault was absorbed.
        detail: String,
    },
    /// A result-store event (schema v5): quarantine routing, torn-tail
    /// recovery, fsck repair, or a score-cache rebuild after a model
    /// fingerprint mismatch.
    Store {
        /// Stable action label, e.g. `quarantined`, `torn_tail_skipped`,
        /// `fsck_repair`, `cache_rebuild`.
        action: String,
        /// What exactly happened (record identity, reject reason,
        /// fingerprints).
        detail: String,
    },
}

impl ResilienceEvent {
    /// The stable `kind` discriminant, matching the serialized tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ResilienceEvent::Attempt { .. } => "attempt",
            ResilienceEvent::Retry { .. } => "retry",
            ResilienceEvent::Degraded { .. } => "degraded",
            ResilienceEvent::FaultInjected { .. } => "fault_injected",
            ResilienceEvent::Recovered { .. } => "recovered",
            ResilienceEvent::Store { .. } => "store",
        }
    }
}

impl Serialize for ResilienceEvent {
    fn to_value(&self) -> Value {
        let mut fields = vec![("kind".to_owned(), Value::Str(self.kind().to_owned()))];
        match self {
            ResilienceEvent::Attempt {
                attempt,
                epochs,
                seed,
                converged,
                reason,
            } => {
                fields.push(("attempt".to_owned(), attempt.to_value()));
                fields.push(("epochs".to_owned(), epochs.to_value()));
                fields.push(("seed".to_owned(), seed.to_value()));
                fields.push(("converged".to_owned(), converged.to_value()));
                fields.push(("reason".to_owned(), reason.to_value()));
            }
            ResilienceEvent::Retry {
                attempt,
                epochs,
                seed,
            } => {
                fields.push(("attempt".to_owned(), attempt.to_value()));
                fields.push(("epochs".to_owned(), epochs.to_value()));
                fields.push(("seed".to_owned(), seed.to_value()));
            }
            ResilienceEvent::Degraded {
                after_attempts,
                mode,
            } => {
                fields.push(("after_attempts".to_owned(), after_attempts.to_value()));
                fields.push(("mode".to_owned(), mode.to_value()));
            }
            ResilienceEvent::FaultInjected { fault, detail }
            | ResilienceEvent::Recovered { fault, detail } => {
                fields.push(("fault".to_owned(), fault.to_value()));
                fields.push(("detail".to_owned(), detail.to_value()));
            }
            ResilienceEvent::Store { action, detail } => {
                fields.push(("action".to_owned(), action.to_value()));
                fields.push(("detail".to_owned(), detail.to_value()));
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for ResilienceEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind: String = serde::field(v, "kind")?;
        match kind.as_str() {
            "attempt" => Ok(ResilienceEvent::Attempt {
                attempt: serde::field(v, "attempt")?,
                epochs: serde::field(v, "epochs")?,
                seed: serde::field(v, "seed")?,
                converged: serde::field(v, "converged")?,
                reason: serde::field(v, "reason")?,
            }),
            "retry" => Ok(ResilienceEvent::Retry {
                attempt: serde::field(v, "attempt")?,
                epochs: serde::field(v, "epochs")?,
                seed: serde::field(v, "seed")?,
            }),
            "degraded" => Ok(ResilienceEvent::Degraded {
                after_attempts: serde::field(v, "after_attempts")?,
                mode: serde::field(v, "mode")?,
            }),
            "fault_injected" => Ok(ResilienceEvent::FaultInjected {
                fault: serde::field(v, "fault")?,
                detail: serde::field(v, "detail")?,
            }),
            "recovered" => Ok(ResilienceEvent::Recovered {
                fault: serde::field(v, "fault")?,
                detail: serde::field(v, "detail")?,
            }),
            "store" => Ok(ResilienceEvent::Store {
                action: serde::field(v, "action")?,
                detail: serde::field(v, "detail")?,
            }),
            other => Err(DeError::new(format!(
                "unknown resilience event kind `{other}`"
            ))),
        }
    }
}

impl fmt::Display for ResilienceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceEvent::Attempt {
                attempt,
                epochs,
                seed,
                converged,
                reason,
            } => write!(
                f,
                "attempt {attempt} (epochs={epochs} seed={seed:#x}): {} — {reason}",
                if *converged {
                    "converged"
                } else {
                    "not converged"
                }
            ),
            ResilienceEvent::Retry {
                attempt,
                epochs,
                seed,
            } => write!(
                f,
                "retry -> attempt {attempt} (epochs={epochs} seed={seed:#x})"
            ),
            ResilienceEvent::Degraded {
                after_attempts,
                mode,
            } => write!(f, "degraded to {mode} after {after_attempts} attempts"),
            ResilienceEvent::FaultInjected { fault, detail } => {
                write!(f, "fault injected [{fault}]: {detail}")
            }
            ResilienceEvent::Recovered { fault, detail } => {
                write!(f, "recovered [{fault}]: {detail}")
            }
            ResilienceEvent::Store { action, detail } => {
                write!(f, "store [{action}]: {detail}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_with_kind_tag() {
        let events = vec![
            ResilienceEvent::Attempt {
                attempt: 1,
                epochs: 200,
                seed: 7,
                converged: false,
                reason: "slope too steep".into(),
            },
            ResilienceEvent::Retry {
                attempt: 2,
                epochs: 400,
                seed: 99,
            },
            ResilienceEvent::Degraded {
                after_attempts: 3,
                mode: "raw_space".into(),
            },
            ResilienceEvent::FaultInjected {
                fault: "nan_cell".into(),
                detail: "(0,3) = NaN".into(),
            },
            ResilienceEvent::Recovered {
                fault: "nan_cell".into(),
                detail: "typed InvalidData".into(),
            },
            ResilienceEvent::Store {
                action: "quarantined".into(),
                detail: "machine-x/suite-y: checksum_mismatch".into(),
            },
        ];
        let json = serde_json::to_string(&events).unwrap();
        assert!(json.contains("\"kind\":\"retry\""));
        assert!(json.contains("\"kind\":\"fault_injected\""));
        assert!(json.contains("\"kind\":\"store\""));
        let back: Vec<ResilienceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn kind_matches_serialized_tag() {
        let e = ResilienceEvent::Degraded {
            after_attempts: 2,
            mode: "raw_space".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains(&format!("\"kind\":\"{}\"", e.kind())));
    }

    #[test]
    fn display_is_informative() {
        let e = ResilienceEvent::Retry {
            attempt: 2,
            epochs: 400,
            seed: 0xAB,
        };
        let text = e.to_string();
        assert!(text.contains("attempt 2"));
        assert!(text.contains("epochs=400"));
        assert!(text.contains("0xab"));
    }
}
