//! Per-worker timeline lanes: who computed which chunk, when.
//!
//! The span tree ([`crate::span`]) deliberately lives on the coordinating
//! thread, so it can say *that* a parallel stage took 12 ms but not how the
//! chunks were spread across workers, whether one straggler chunk serialized
//! the stage, or how much of the workers' wall time was actually busy. Lanes
//! close that gap: each scoped worker records one [`LaneInterval`] per chunk
//! it executes into a lock-free, pre-allocated [`LaneBuf`] (the timeline
//! sibling of [`crate::CounterBuf`]), the coordinator merges the intervals
//! in chunk order, and the trainer attaches the buffer to the collector once
//! per stage — so steady-state epochs stay allocation-free.
//!
//! Exported lane sets ([`LaneSetExport`]) carry derived analytics: per-worker
//! busy time and occupancy, and the stage's parallel efficiency
//! `busy / (workers × wall)`. The *structure* of a lane set — stage name,
//! enclosing span, chunk count, run count, and the multiset of chunk
//! indices — is a pure function of the input, never of the worker count or
//! the clock, and is what [`crate::TraceReport::fingerprint`] folds in.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// A copy of one collector's origin clock, handed by value into parallel
/// sections so workers can stamp intervals without touching the collector
/// (no lock, no `Arc` traffic) on the hot path.
#[derive(Debug, Clone, Copy)]
pub struct LaneClock {
    origin: Instant,
}

impl LaneClock {
    pub(crate) fn new(origin: Instant) -> Self {
        LaneClock { origin }
    }

    /// Microseconds since the owning collector's origin.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// One chunk's execution interval on one worker's lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneInterval {
    /// Deterministic chunk index within the parallel section.
    pub chunk: u32,
    /// Worker lane (`0` is the calling thread on the serial path).
    pub worker: u32,
    /// Which run of the section this interval belongs to (a stage executed
    /// once per epoch produces one run per epoch).
    pub run: u32,
    /// Interval start, µs from the collector origin.
    pub begin_us: u64,
    /// Interval end, µs from the collector origin.
    pub end_us: u64,
}

impl LaneInterval {
    /// The interval's duration in microseconds.
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.begin_us)
    }
}

/// A pre-allocated interval buffer for one stage: workers (or the serial
/// fallback) record into it lock-free, and the owner attaches it to the
/// collector once via [`crate::Collector::attach_lanes`].
///
/// Reserve the full capacity up front (`runs × chunks_per_run`) so
/// steady-state recording never reallocates — the zero-alloc training test
/// counts on it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneBuf {
    intervals: Vec<LaneInterval>,
    runs: u32,
}

impl LaneBuf {
    /// An empty buffer (allocates on first record; prefer
    /// [`LaneBuf::with_capacity`] around hot loops).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `capacity` intervals.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        LaneBuf {
            intervals: Vec::with_capacity(capacity),
            runs: 0,
        }
    }

    /// Records one chunk interval in the current run.
    pub fn record(&mut self, chunk: usize, worker: usize, begin_us: u64, end_us: u64) {
        self.intervals.push(LaneInterval {
            chunk: u32::try_from(chunk).unwrap_or(u32::MAX),
            worker: u32::try_from(worker).unwrap_or(u32::MAX),
            run: self.runs,
            begin_us,
            end_us,
        });
    }

    /// Absorbs worker-local intervals from one parallel run, re-sorted into
    /// chunk order and re-tagged with the current run index. Coordinators
    /// call this once per section with the concatenation of every worker's
    /// local intervals.
    pub fn absorb_run(&mut self, mut intervals: Vec<LaneInterval>) {
        intervals.sort_unstable_by_key(|iv| iv.chunk);
        for iv in &intervals {
            self.record(
                iv.chunk as usize,
                iv.worker as usize,
                iv.begin_us,
                iv.end_us,
            );
        }
        self.end_run();
    }

    /// Closes the current run: subsequent records belong to the next run.
    pub fn end_run(&mut self) {
        self.runs += 1;
    }

    /// Completed runs.
    #[must_use]
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// All recorded intervals, in record order (chunk order within a run).
    #[must_use]
    pub fn intervals(&self) -> &[LaneInterval] {
        &self.intervals
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty() && self.runs == 0
    }
}

/// Internal record of one attached lane set.
#[derive(Debug, Clone)]
pub(crate) struct LaneSetRecord {
    pub(crate) stage: &'static str,
    pub(crate) span: Option<usize>,
    pub(crate) n_chunks: usize,
    pub(crate) buf: LaneBuf,
}

/// One worker's aggregate within a lane set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneWorkerExport {
    /// Worker lane id (`0` is the calling thread on the serial path).
    pub worker: u32,
    /// Intervals this worker executed.
    pub intervals: u64,
    /// Total busy time on this lane, µs.
    pub busy_us: u64,
    /// `busy_us / wall_us` — the share of the stage's wall time this lane
    /// spent computing.
    pub occupancy: f64,
}

/// One stage's exported lane set: the raw intervals plus derived
/// parallel-efficiency analytics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneSetExport {
    /// Stage name the lanes were recorded under.
    pub stage: String,
    /// Index of the span that was open when the lanes were attached.
    pub span: Option<usize>,
    /// Deterministic chunk count per run (`0..n_chunks` is partitioned
    /// exactly once per run).
    pub n_chunks: usize,
    /// Completed runs (one per epoch for per-epoch stages).
    pub runs: u32,
    /// Every recorded interval, chunk order within each run.
    pub intervals: Vec<LaneInterval>,
    /// Per-worker aggregates, ascending worker id.
    pub workers: Vec<LaneWorkerExport>,
    /// Summed wall time of the runs (max end − min begin per run), µs.
    pub wall_us: u64,
    /// Summed busy time across all lanes, µs.
    pub busy_us: u64,
    /// `busy / (workers × wall)` — 1.0 means every lane was busy for the
    /// stage's whole wall time.
    pub parallel_efficiency: f64,
}

impl LaneSetExport {
    /// The multiset of chunk indices as sorted `(chunk, count)` pairs — the
    /// worker-count- and clock-invariant projection of the lane set used by
    /// the trace fingerprint.
    #[must_use]
    pub fn chunk_multiset(&self) -> Vec<(u32, u64)> {
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        let mut sorted: Vec<u32> = self.intervals.iter().map(|iv| iv.chunk).collect();
        sorted.sort_unstable();
        for chunk in sorted {
            match pairs.last_mut() {
                Some((c, n)) if *c == chunk => *n += 1,
                _ => pairs.push((chunk, 1)),
            }
        }
        pairs
    }

    /// Fingerprint line for this lane set: structure only, no clocks, no
    /// worker attribution.
    #[must_use]
    pub fn structural_line(&self) -> String {
        format!(
            "lanes {} span={:?} n_chunks={} runs={} chunks={:?}",
            self.stage,
            self.span,
            self.n_chunks,
            self.runs,
            self.chunk_multiset()
        )
    }
}

pub(crate) fn export(record: &LaneSetRecord) -> LaneSetExport {
    let intervals = record.buf.intervals().to_vec();
    // Wall time: sum over runs of (max end − min begin). Runs are separated
    // by coordinator work (e.g. the weight update between epochs) that the
    // stage's lanes should not be billed for.
    let mut wall_us = 0u64;
    let mut run = u32::MAX;
    let mut run_begin = 0u64;
    let mut run_end = 0u64;
    for iv in &intervals {
        if iv.run != run {
            wall_us += run_end.saturating_sub(run_begin);
            run = iv.run;
            run_begin = iv.begin_us;
            run_end = iv.end_us;
        } else {
            run_begin = run_begin.min(iv.begin_us);
            run_end = run_end.max(iv.end_us);
        }
    }
    wall_us += run_end.saturating_sub(run_begin);

    let mut workers: Vec<LaneWorkerExport> = Vec::new();
    for iv in &intervals {
        let lane = match workers.iter_mut().find(|w| w.worker == iv.worker) {
            Some(lane) => lane,
            None => {
                workers.push(LaneWorkerExport {
                    worker: iv.worker,
                    intervals: 0,
                    busy_us: 0,
                    occupancy: 0.0,
                });
                // Just pushed, so last_mut is always Some; the unreachable
                // default keeps the library's no-unwrap policy.
                match workers.last_mut() {
                    Some(lane) => lane,
                    None => return empty_export(record),
                }
            }
        };
        lane.intervals += 1;
        lane.busy_us += iv.duration_us();
    }
    workers.sort_unstable_by_key(|w| w.worker);
    let busy_us: u64 = workers.iter().map(|w| w.busy_us).sum();
    for lane in &mut workers {
        lane.occupancy = ratio(lane.busy_us, wall_us);
    }
    let parallel_efficiency = if workers.is_empty() {
        0.0
    } else {
        ratio(busy_us, wall_us * workers.len() as u64)
    };
    LaneSetExport {
        stage: record.stage.to_owned(),
        span: record.span,
        n_chunks: record.n_chunks,
        runs: record.buf.runs(),
        intervals,
        workers,
        wall_us,
        busy_us,
        parallel_efficiency,
    }
}

fn empty_export(record: &LaneSetRecord) -> LaneSetExport {
    LaneSetExport {
        stage: record.stage.to_owned(),
        span: record.span,
        n_chunks: record.n_chunks,
        runs: record.buf.runs(),
        intervals: Vec::new(),
        workers: Vec::new(),
        wall_us: 0,
        busy_us: 0,
        parallel_efficiency: 0.0,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(buf: LaneBuf) -> LaneSetRecord {
        LaneSetRecord {
            stage: "test.stage",
            span: Some(1),
            n_chunks: 3,
            buf,
        }
    }

    #[test]
    fn record_and_runs() {
        let mut buf = LaneBuf::with_capacity(6);
        buf.record(0, 0, 10, 20);
        buf.record(1, 0, 20, 30);
        buf.record(2, 0, 30, 45);
        buf.end_run();
        buf.record(0, 0, 50, 60);
        buf.end_run();
        assert_eq!(buf.runs(), 2);
        assert_eq!(buf.intervals().len(), 4);
        assert_eq!(buf.intervals()[3].run, 1);
        assert!(!buf.is_empty());
        assert!(LaneBuf::new().is_empty());
    }

    #[test]
    fn absorb_run_sorts_by_chunk_and_retags_run() {
        let mut buf = LaneBuf::new();
        buf.end_run(); // one prior (empty) run
        buf.absorb_run(vec![
            LaneInterval {
                chunk: 2,
                worker: 1,
                run: 0,
                begin_us: 7,
                end_us: 9,
            },
            LaneInterval {
                chunk: 0,
                worker: 2,
                run: 0,
                begin_us: 1,
                end_us: 5,
            },
        ]);
        let ivs = buf.intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].chunk, 0);
        assert_eq!(ivs[0].worker, 2);
        assert_eq!(ivs[0].run, 1);
        assert_eq!(ivs[1].chunk, 2);
        assert_eq!(buf.runs(), 2);
    }

    #[test]
    fn export_computes_occupancy_and_efficiency() {
        // Two workers over one run: worker 0 busy 10 of wall 20, worker 1
        // busy 20 of wall 20 -> efficiency (10+20)/(2*20) = 0.75.
        let mut buf = LaneBuf::with_capacity(3);
        buf.record(0, 1, 0, 20);
        buf.record(1, 0, 0, 5);
        buf.record(2, 0, 10, 15);
        buf.end_run();
        let e = export(&record_with(buf));
        assert_eq!(e.wall_us, 20);
        assert_eq!(e.busy_us, 30);
        assert_eq!(e.workers.len(), 2);
        assert_eq!(e.workers[0].worker, 0);
        assert_eq!(e.workers[0].busy_us, 10);
        assert!((e.workers[0].occupancy - 0.5).abs() < 1e-12);
        assert!((e.workers[1].occupancy - 1.0).abs() < 1e-12);
        assert!((e.parallel_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wall_time_sums_runs_not_gaps() {
        // Two runs of 10 us separated by a 1000 us gap: wall is 20, not 1020.
        let mut buf = LaneBuf::new();
        buf.record(0, 0, 0, 10);
        buf.end_run();
        buf.record(0, 0, 1010, 1020);
        buf.end_run();
        let e = export(&record_with(buf));
        assert_eq!(e.wall_us, 20);
        assert!((e.parallel_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn structural_line_ignores_workers_and_clocks() {
        let mut serial = LaneBuf::new();
        serial.record(0, 0, 0, 10);
        serial.record(1, 0, 10, 30);
        serial.end_run();
        let mut parallel = LaneBuf::new();
        parallel.record(0, 3, 500, 800);
        parallel.record(1, 7, 500, 900);
        parallel.end_run();
        let a = export(&record_with(serial));
        let b = export(&record_with(parallel));
        assert_eq!(a.structural_line(), b.structural_line());
        assert_eq!(a.chunk_multiset(), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn structural_line_sees_chunk_set_changes() {
        let mut a = LaneBuf::new();
        a.record(0, 0, 0, 1);
        a.end_run();
        let mut b = LaneBuf::new();
        b.record(1, 0, 0, 1);
        b.end_run();
        assert_ne!(
            export(&record_with(a)).structural_line(),
            export(&record_with(b)).structural_line()
        );
    }

    #[test]
    fn empty_buf_exports_zeroes() {
        let e = export(&record_with(LaneBuf::new()));
        assert_eq!(e.wall_us, 0);
        assert_eq!(e.busy_us, 0);
        assert!(e.workers.is_empty());
        assert_eq!(e.parallel_efficiency, 0.0);
    }
}
