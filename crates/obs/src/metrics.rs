//! The metrics registry: named counters on the pipeline hot paths and
//! fixed-bucket histograms.
//!
//! Counters form a closed set ([`Counter`]) so instrumented code pays an
//! array index, never a hash lookup, and every export is schema-stable.
//! Histogram buckets are fixed at compile time for the same reason: two
//! traces of the same study always have comparable bucket vectors.
//!
//! Hot loops should not touch the shared [`crate::Collector`] per item.
//! Instead they accumulate into a local [`CounterBuf`] — one per work chunk
//! of `hiermeans_linalg::parallel` — and the coordinating thread merges the
//! per-chunk buffers *in chunk order* before flushing once. Counter sums are
//! commutative, so totals are identical for any worker count; keeping the
//! merge in chunk order makes the whole trace, not just the totals,
//! reproducible run-to-run.

use serde::{Deserialize, Serialize};

/// The closed set of hot-path counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Best-matching-unit searches (one per sample per search pass).
    BmuSearches,
    /// Point-to-point distance evaluations inside BMU searches and pairwise
    /// distance matrices.
    DistanceEvaluations,
    /// Neighborhood-kernel evaluations that actually contributed a nonzero
    /// weight during SOM training (data-dependent, counted per chunk).
    KernelEvaluations,
    /// SOM training epochs completed.
    SomEpochs,
    /// Agglomerative linkage merges performed.
    LinkageMerges,
    /// Score-table sweep cells computed (one per `k` per machine).
    ScoreSweepCells,
    /// Workloads assembled into characteristic vectors.
    WorkloadsCharacterized,
    /// Raw features dropped by the characterization filters.
    FeaturesDropped,
    /// Batch BMU searches answered from the epoch-warm cache (the drift
    /// bound certified the previous epoch's BMU, no scan ran).
    BmuWarmHits,
    /// Batch BMU searches that fell back to the exact scan because the
    /// drift bound could not certify the cached BMU.
    BmuExactRescans,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 10] = [
        Counter::BmuSearches,
        Counter::DistanceEvaluations,
        Counter::KernelEvaluations,
        Counter::SomEpochs,
        Counter::LinkageMerges,
        Counter::ScoreSweepCells,
        Counter::WorkloadsCharacterized,
        Counter::FeaturesDropped,
        Counter::BmuWarmHits,
        Counter::BmuExactRescans,
    ];

    /// Stable snake_case name used in `OBS_trace.json`.
    pub fn name(self) -> &'static str {
        match self {
            Counter::BmuSearches => "bmu_searches",
            Counter::DistanceEvaluations => "distance_evaluations",
            Counter::KernelEvaluations => "kernel_evaluations",
            Counter::SomEpochs => "som_epochs",
            Counter::LinkageMerges => "linkage_merges",
            Counter::ScoreSweepCells => "score_sweep_cells",
            Counter::WorkloadsCharacterized => "workloads_characterized",
            Counter::FeaturesDropped => "features_dropped",
            Counter::BmuWarmHits => "bmu_warm_hits",
            Counter::BmuExactRescans => "bmu_exact_rescans",
        }
    }

    /// Whether the counter is *advisory*: it describes which internal fast
    /// path served a result, not the result itself. Advisory counters are
    /// excluded from [`crate::report::TraceReport::fingerprint`] — the warm
    /// hit/rescan split legitimately differs between warm-enabled and
    /// warm-disabled runs of the same study even though every exported
    /// artifact is bitwise identical.
    pub fn advisory(self) -> bool {
        matches!(self, Counter::BmuWarmHits | Counter::BmuExactRescans)
    }
}

/// A local counter buffer for one unit of work (typically one parallel
/// chunk). Cheap to create, free of locks; merge buffers in chunk order and
/// flush the result through [`crate::Collector::flush`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterBuf {
    counts: [u64; Counter::ALL.len()],
}

impl CounterBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `counter`.
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.counts[counter as usize] += n;
    }

    /// The buffered value of `counter`.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter as usize]
    }

    /// Merges another buffer into this one (callers merge in chunk order).
    pub fn merge(&mut self, other: &CounterBuf) {
        for (acc, v) in self.counts.iter_mut().zip(other.counts.iter()) {
            *acc += v;
        }
    }

    pub(crate) fn counts(&self) -> &[u64; Counter::ALL.len()] {
        &self.counts
    }
}

/// The closed set of fixed-bucket histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Wall-clock duration of one SOM training epoch, in microseconds.
    EpochDurationMicros,
    /// Dendrogram merge distances, in map-coordinate units.
    MergeDistance,
    /// Wall-clock duration of one parallel-section chunk (lane interval),
    /// in microseconds.
    ChunkDurationMicros,
    /// Per-run chunk-duration imbalance: the slowest chunk's duration over
    /// the run's mean chunk duration (1.0 = perfectly balanced).
    ChunkImbalance,
}

impl HistogramId {
    /// Every histogram, in export order.
    pub const ALL: [HistogramId; 4] = [
        HistogramId::EpochDurationMicros,
        HistogramId::MergeDistance,
        HistogramId::ChunkDurationMicros,
        HistogramId::ChunkImbalance,
    ];

    /// Stable snake_case name used in `OBS_trace.json`.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::EpochDurationMicros => "epoch_duration_us",
            HistogramId::MergeDistance => "merge_distance",
            HistogramId::ChunkDurationMicros => "chunk_duration_us",
            HistogramId::ChunkImbalance => "chunk_imbalance",
        }
    }

    /// Whether the recorded values are wall-clock timings (or derived from
    /// them, like the chunk imbalance ratio). Timing histograms are excluded
    /// from [`crate::report::TraceReport::fingerprint`], since durations
    /// legitimately differ between serial and parallel runs of the same
    /// computation.
    pub fn is_timing(self) -> bool {
        matches!(
            self,
            HistogramId::EpochDurationMicros
                | HistogramId::ChunkDurationMicros
                | HistogramId::ChunkImbalance
        )
    }

    /// The fixed upper bucket boundaries (the last bucket is unbounded).
    pub fn boundaries(self) -> &'static [f64] {
        match self {
            // 10us .. 10s, one decade per bucket.
            HistogramId::EpochDurationMicros => &[1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7],
            // Map positions live on a grid of diameter ~13; geometric
            // boundaries resolve both the near-duplicate merges and the
            // final cross-map joins.
            HistogramId::MergeDistance => &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            // Chunks are 1..=256 items of cheap arithmetic: sub-µs to ms.
            HistogramId::ChunkDurationMicros => &[1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6],
            // Ratio >= 1; a straggler chunk at 2x the mean halves the
            // achievable speedup of a 2-worker stage.
            HistogramId::ChunkImbalance => &[1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0],
        }
    }
}

/// One fixed-bucket histogram: per-bucket counts plus summary moments.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Histogram {
    id: HistogramId,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    pub(crate) fn new(id: HistogramId) -> Self {
        Histogram {
            id,
            counts: vec![0; id.boundaries().len() + 1],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub(crate) fn record(&mut self, value: f64) {
        let bucket = self
            .id
            .boundaries()
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.id.boundaries().len());
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated by linear interpolation
    /// within the fixed buckets. The first bucket is clamped below by the
    /// observed minimum and the overflow bucket above by the observed
    /// maximum, so estimates never leave the observed range.
    fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let boundaries = self.id.boundaries();
        let target = q * self.total as f64;
        let mut cumulative = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let before = cumulative as f64;
            cumulative += count;
            if cumulative as f64 >= target {
                let upper = boundaries.get(bucket).copied().unwrap_or(self.max);
                let lower = if bucket == 0 {
                    self.min
                } else {
                    boundaries[bucket - 1].max(self.min)
                };
                let lower = lower.min(upper);
                let fraction = ((target - before) / count as f64).clamp(0.0, 1.0);
                return (lower + fraction * (upper - lower)).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub(crate) fn export(&self) -> HistogramExport {
        HistogramExport {
            name: self.id.name().to_owned(),
            timing: self.id.is_timing(),
            boundaries: self.id.boundaries().to_vec(),
            counts: self.counts.clone(),
            total: self.total,
            sum: self.sum,
            min: if self.total == 0 { 0.0 } else { self.min },
            max: if self.total == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// One exported counter total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterExport {
    /// Stable counter name (see [`Counter::name`]).
    pub name: String,
    /// The aggregated total.
    pub value: u64,
}

/// One exported histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramExport {
    /// Stable histogram name (see [`HistogramId::name`]).
    pub name: String,
    /// Whether the values are wall-clock timings (excluded from
    /// deterministic fingerprints).
    pub timing: bool,
    /// Upper bucket boundaries; the final bucket is unbounded.
    pub boundaries: Vec<f64>,
    /// Per-bucket observation counts (`boundaries.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of all recorded values.
    pub sum: f64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
    /// Median, interpolated within the fixed buckets (0 when empty).
    /// `#[serde(default)]` keeps schema-v2 artifacts parseable.
    #[serde(default)]
    pub p50: f64,
    /// 95th percentile, interpolated within the fixed buckets.
    #[serde(default)]
    pub p95: f64,
    /// 99th percentile, interpolated within the fixed buckets.
    #[serde(default)]
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn counter_buf_merges_commutatively() {
        let mut a = CounterBuf::new();
        a.add(Counter::BmuSearches, 3);
        a.add(Counter::DistanceEvaluations, 10);
        let mut b = CounterBuf::new();
        b.add(Counter::BmuSearches, 4);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(Counter::BmuSearches), 7);
        assert_eq!(ab.get(Counter::DistanceEvaluations), 10);
    }

    #[test]
    fn histogram_buckets_cover_the_line() {
        let mut h = Histogram::new(HistogramId::MergeDistance);
        for v in [0.0, 0.3, 0.9, 3.0, 100.0] {
            h.record(v);
        }
        let e = h.export();
        assert_eq!(e.total, 5);
        assert_eq!(e.counts.iter().sum::<u64>(), 5);
        assert_eq!(e.counts[0], 1); // 0.0 <= 0.25
        assert_eq!(*e.counts.last().unwrap(), 1); // 100.0 overflows
        assert_eq!(e.min, 0.0);
        assert_eq!(e.max, 100.0);
    }

    #[test]
    fn empty_histogram_exports_zero_moments() {
        let e = Histogram::new(HistogramId::EpochDurationMicros).export();
        assert_eq!(e.total, 0);
        assert_eq!(e.min, 0.0);
        assert_eq!(e.max, 0.0);
        assert_eq!(e.p50, 0.0);
        assert_eq!(e.p95, 0.0);
        assert_eq!(e.p99, 0.0);
        assert!(e.timing);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 1..=100 across the first two decade buckets: interpolation
        // recovers the true percentiles to within a couple of units.
        let mut h = Histogram::new(HistogramId::EpochDurationMicros);
        for v in 1..=100 {
            h.record(f64::from(v));
        }
        let e = h.export();
        assert!((e.p50 - 50.0).abs() < 2.0, "p50 = {}", e.p50);
        assert!((e.p95 - 95.0).abs() < 2.0, "p95 = {}", e.p95);
        assert!((e.p99 - 99.0).abs() < 2.0, "p99 = {}", e.p99);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = Histogram::new(HistogramId::EpochDurationMicros);
        h.record(42.0);
        let e = h.export();
        assert_eq!(e.p50, 42.0);
        assert_eq!(e.p99, 42.0);
        // Overflow-bucket values are bounded by the observed max.
        let mut h = Histogram::new(HistogramId::MergeDistance);
        h.record(100.0);
        h.record(200.0);
        let e = h.export();
        assert!(e.p99 <= 200.0 && e.p99 >= 100.0, "p99 = {}", e.p99);
    }

    #[test]
    fn new_lane_histograms_are_timing() {
        assert!(HistogramId::ChunkDurationMicros.is_timing());
        assert!(HistogramId::ChunkImbalance.is_timing());
        assert!(!HistogramId::MergeDistance.is_timing());
        assert_eq!(HistogramId::ALL.len(), 4);
        for (i, id) in HistogramId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
        }
    }
}
