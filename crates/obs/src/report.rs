//! The structured trace exporter: the stable `OBS_trace.json` schema and a
//! human-readable stage tree.
//!
//! [`TraceReport`] is one collector's trace; [`TraceDocument`] bundles one
//! report per paper study into the `OBS_trace.json` artifact written by
//! `repro trace`. The schema is versioned ([`SCHEMA_VERSION`]) and every
//! name in it is a stable string, so downstream tooling can diff traces
//! across commits.
//!
//! Wall-clock fields (`start_us`, `duration_us`, timing histograms) are the
//! only parts of a trace that legitimately vary run-to-run;
//! [`TraceReport::fingerprint`] projects them away, leaving a string that
//! must be byte-identical between serial and parallel executions of the
//! same computation.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::convergence::{ConvergenceVerdict, EpochRecord};
use crate::lanes::LaneSetExport;
use crate::metrics::{Counter, CounterExport, HistogramExport};
use crate::resilience::ResilienceEvent;
use crate::span::SpanExport;
use crate::State;

/// Version stamp of the `OBS_trace.json` schema.
///
/// * v1 — spans, counters, histograms, events, epoch telemetry, merge
///   trajectory, convergence verdict.
/// * v2 — adds the `resilience` field: typed retry / degradation /
///   fault-injection events ([`ResilienceEvent`]).
/// * v3 — adds the `lanes` field (per-worker chunk timelines with
///   occupancy/parallel-efficiency analytics, [`LaneSetExport`]), the
///   `chunk_duration_us`/`chunk_imbalance` histograms, and `p50`/`p95`/
///   `p99` summary fields on every histogram. All additions are
///   `#[serde(default)]`-compatible: v2 artifacts still parse.
/// * v4 — adds the `memory` block ([`MemoryReport`]): process peak RSS and
///   per-span allocation count / bytes / high-water mark from
///   [`crate::memhook`]. `None` when memory telemetry was off (or for v3
///   artifacts, which still parse via `#[serde(default)]`). Memory is
///   run-varying, like the clocks, so it is excluded from
///   [`TraceReport::fingerprint`].
/// * v5 — adds the `store` resilience-event class
///   ([`ResilienceEvent::Store`]): result-store actions — quarantine
///   routing, torn-tail recovery, fsck repair, score-cache rebuild — now
///   narrate through the same `resilience` field the pipeline driver uses.
///   Structurally additive (a new `kind` value, no new fields), so v4
///   artifacts still parse; v5 artifacts containing `store` events do not
///   parse with a v4 reader, hence the bump.
/// * v6 — adds the epoch-warm BMU counters (`bmu_warm_hits`,
///   `bmu_exact_rescans`) and the per-epoch `warm_hit_rate` field on
///   [`EpochRecord`]. All three are *advisory* — they describe which
///   internal fast path served a search, not the search's result — so they
///   are excluded from [`TraceReport::fingerprint`]. Additive and
///   `#[serde(default)]`-compatible: v5 artifacts still parse.
/// * v7 — adds two document-level fields on [`TraceDocument`]: `meta`
///   (provenance — schema version, git revision, host fingerprint, cargo
///   profile, [`crate::history::BenchMeta`] — matching what the
///   `BENCH_*.json` baselines already carry) and `live` (the telemetry
///   plane's end-of-run [`crate::live::LiveSummary`] when the run hosted
///   `--live`). Both are run-varying metadata outside every
///   [`TraceReport::fingerprint`], additive, and
///   `#[serde(default)]`-compatible: v6 artifacts still parse.
pub const SCHEMA_VERSION: u32 = 7;

/// One recorded point event, exported.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventExport {
    /// Event name.
    pub name: String,
    /// Free-form detail text.
    pub detail: String,
    /// Index of the enclosing span, if any.
    pub span: Option<usize>,
    /// Microseconds from the collector's origin.
    pub at_us: u64,
}

/// Memory attribution for one span, exported in the `memory` block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMemory {
    /// Arena index of the span this attribution belongs to.
    pub span: usize,
    /// The span's stage name, duplicated for grep-ability.
    pub stage: String,
    /// Heap allocations charged to the span (coordinating thread plus
    /// parallel worker tallies).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// Coordinating-thread live-byte high-water mark over the span.
    pub peak_bytes: u64,
}

/// The schema-v4 `memory` block: process peak RSS plus per-span
/// allocation attribution (only spans that were open while the tracking
/// allocator was hooked appear in `stages`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Process peak resident set size in kB (kernel `VmHWM` combined with
    /// the sampler's observed maximum); `0` when unavailable.
    pub peak_rss_kb: u64,
    /// Per-span attribution in span open order.
    pub stages: Vec<StageMemory>,
}

/// One collector's exported trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Spans in open order; `id` equals the vector index.
    pub spans: Vec<SpanExport>,
    /// Counter totals, one entry per [`Counter`] in declaration order.
    pub counters: Vec<CounterExport>,
    /// Fixed-bucket histograms in declaration order.
    pub histograms: Vec<HistogramExport>,
    /// Point events in record order.
    pub events: Vec<EventExport>,
    /// Per-epoch SOM quality telemetry (empty if sampling was off).
    pub som_epochs: Vec<EpochRecord>,
    /// Agglomerative merge distances in merge order.
    pub merge_distances: Vec<f64>,
    /// The SOM convergence verdict, if training recorded telemetry.
    pub convergence: Option<ConvergenceVerdict>,
    /// Self-healing events — retries, degradations, injected faults — in
    /// record order. Empty for a fault-free single-attempt run.
    pub resilience: Vec<ResilienceEvent>,
    /// Per-stage worker-lane timelines with parallel-efficiency analytics,
    /// in attach order. Empty when lane recording is off (v2 traces).
    #[serde(default)]
    pub lanes: Vec<LaneSetExport>,
    /// Memory telemetry; `None` when `ObsConfig.memory` was off (and for
    /// pre-v4 traces).
    #[serde(default)]
    pub memory: Option<MemoryReport>,
}

pub(crate) fn export(state: &State, peak_rss_kb: Option<u64>) -> TraceReport {
    TraceReport {
        schema_version: SCHEMA_VERSION,
        spans: state
            .spans
            .iter()
            .enumerate()
            .map(|(id, s)| SpanExport {
                id,
                parent: s.parent,
                name: s.name.to_owned(),
                start_us: s.start_us,
                duration_us: s.duration_us,
            })
            .collect(),
        counters: Counter::ALL
            .iter()
            .map(|&c| CounterExport {
                name: c.name().to_owned(),
                value: state.counters[c as usize],
            })
            .collect(),
        histograms: state.histograms.iter().map(|h| h.export()).collect(),
        events: state
            .events
            .iter()
            .map(|e| EventExport {
                name: e.name.to_owned(),
                detail: e.detail.clone(),
                span: e.span,
                at_us: e.at_us,
            })
            .collect(),
        som_epochs: state.epochs.clone(),
        merge_distances: state.merge_distances.clone(),
        convergence: state.verdict.clone(),
        resilience: state.resilience.clone(),
        lanes: state.lane_sets.iter().map(crate::lanes::export).collect(),
        memory: peak_rss_kb.map(|peak_rss_kb| MemoryReport {
            peak_rss_kb,
            stages: state
                .spans
                .iter()
                .enumerate()
                .filter_map(|(id, s)| {
                    s.mem.map(|m| StageMemory {
                        span: id,
                        stage: s.name.to_owned(),
                        allocs: m.allocs,
                        bytes: m.bytes,
                        peak_bytes: m.peak_bytes,
                    })
                })
                .collect(),
        }),
    }
}

impl TraceReport {
    /// The total of the counter with this stable name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram with this stable name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramExport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Durations (µs) of every span named `name`, in open order — the
    /// shared timing source for `BENCH_pipeline.json`.
    #[must_use]
    pub fn span_durations_us(&self, name: &str) -> Vec<u64> {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_us)
            .collect()
    }

    /// Whether a degradation event was recorded — the run fell back to
    /// raw-space clustering after exhausting retries.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.resilience
            .iter()
            .any(|e| matches!(e, ResilienceEvent::Degraded { .. }))
    }

    /// How many retry events were recorded.
    #[must_use]
    pub fn retry_count(&self) -> usize {
        self.resilience
            .iter()
            .filter(|e| matches!(e, ResilienceEvent::Retry { .. }))
            .count()
    }

    /// The lane set attached under this stage name, if any.
    #[must_use]
    pub fn lane(&self, stage: &str) -> Option<&LaneSetExport> {
        self.lanes.iter().find(|l| l.stage == stage)
    }

    /// The structural projection of every lane set: stage, enclosing span,
    /// chunk count, run count, and the chunk-index multiset — no clocks, no
    /// worker attribution, so the string is identical for any worker count.
    #[must_use]
    pub fn lane_fingerprint(&self) -> String {
        let mut out = String::new();
        for l in &self.lanes {
            let _ = writeln!(out, "{}", l.structural_line());
        }
        out
    }

    /// A deterministic projection of the trace: the span tree (names and
    /// structure, no clocks), counter totals, non-timing histograms, epoch
    /// telemetry, merge trajectory, events, and the verdict. Floats are
    /// rendered as raw bit patterns, so two fingerprints are equal iff the
    /// deterministic trace content is bitwise identical.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "schema v{}", self.schema_version);
        for s in &self.spans {
            let _ = writeln!(out, "span {} id={} parent={:?}", s.name, s.id, s.parent);
        }
        for c in self.counters.iter().filter(|c| !advisory_counter(&c.name)) {
            let _ = writeln!(out, "counter {}={}", c.name, c.value);
        }
        for h in self.histograms.iter().filter(|h| !h.timing) {
            let _ = writeln!(
                out,
                "histogram {} counts={:?} total={} sum={:016x} min={:016x} max={:016x}",
                h.name,
                h.counts,
                h.total,
                h.sum.to_bits(),
                h.min.to_bits(),
                h.max.to_bits()
            );
        }
        // `warm_hit_rate` is deliberately absent: it is advisory (differs
        // between warm-enabled and warm-disabled runs of identical maps).
        for e in &self.som_epochs {
            let _ = writeln!(
                out,
                "epoch {} qe={:016x} te={:016x} sigma={:016x}",
                e.epoch,
                e.quantization_error.to_bits(),
                e.topographic_error.to_bits(),
                e.sigma.to_bits()
            );
        }
        for (i, d) in self.merge_distances.iter().enumerate() {
            let _ = writeln!(out, "merge {} d={:016x}", i, d.to_bits());
        }
        for e in &self.events {
            let _ = writeln!(out, "event {} span={:?} {}", e.name, e.span, e.detail);
        }
        if let Some(v) = &self.convergence {
            let _ = writeln!(
                out,
                "verdict converged={} records={} window={} rel={:016x} rate={:016x} reason={}",
                v.converged,
                v.records,
                v.window,
                v.relative_improvement.to_bits(),
                v.rate_per_epoch.to_bits(),
                v.reason
            );
        }
        for (i, e) in self.resilience.iter().enumerate() {
            let _ = writeln!(out, "resilience {} {} {}", i, e.kind(), e);
        }
        out.push_str(&self.lane_fingerprint());
        out
    }

    /// Renders the human-readable stage tree with durations, hot-path
    /// counters, and the convergence verdict.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace (schema v{})", self.schema_version);
        for s in &self.spans {
            let indent = "  ".repeat(s.depth_in(&self.spans) + 1);
            let _ = writeln!(out, "{indent}{:<32} {}", s.name, fmt_us(s.duration_us));
        }
        let active: Vec<&CounterExport> = self.counters.iter().filter(|c| c.value > 0).collect();
        if !active.is_empty() {
            let _ = writeln!(out, "  counters:");
            for c in active {
                let _ = writeln!(out, "    {:<32} {}", c.name, c.value);
            }
        }
        for h in self.histograms.iter().filter(|h| h.total > 0) {
            let _ = writeln!(
                out,
                "  histogram {:<22} n={} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3} mean={:.3}",
                h.name,
                h.total,
                h.min,
                h.p50,
                h.p95,
                h.p99,
                h.max,
                h.sum / h.total as f64
            );
        }
        if !self.lanes.is_empty() {
            let _ = writeln!(out, "  lanes:");
            for l in &self.lanes {
                let _ = writeln!(
                    out,
                    "    {:<28} runs={} chunks={} workers={} busy={} wall={} eff={:.0}%",
                    l.stage,
                    l.runs,
                    l.n_chunks,
                    l.workers.len(),
                    fmt_us(l.busy_us),
                    fmt_us(l.wall_us),
                    l.parallel_efficiency * 100.0
                );
                if l.workers.len() > 1 {
                    let occupancies: Vec<String> = l
                        .workers
                        .iter()
                        .map(|w| format!("{}:{:.0}%", w.worker, w.occupancy * 100.0))
                        .collect();
                    let _ = writeln!(out, "      occupancy {}", occupancies.join(" "));
                }
            }
        }
        if let Some((first, last)) = self.som_epochs.first().zip(self.som_epochs.last()) {
            let _ = writeln!(
                out,
                "  som quality: qe {:.4} -> {:.4}, te {:.4} -> {:.4} over {} sampled epochs",
                first.quantization_error,
                last.quantization_error,
                first.topographic_error,
                last.topographic_error,
                self.som_epochs.len()
            );
        }
        let warm_hits = self.counter("bmu_warm_hits").unwrap_or(0);
        let warm_rescans = self.counter("bmu_exact_rescans").unwrap_or(0);
        if warm_hits + warm_rescans > 0 {
            let _ = writeln!(
                out,
                "  warm bmu: {} cache hits / {} exact rescans ({:.1}% prune hit rate)",
                warm_hits,
                warm_rescans,
                100.0 * warm_hits as f64 / (warm_hits + warm_rescans) as f64
            );
        }
        if let Some(v) = &self.convergence {
            let _ = writeln!(
                out,
                "  convergence: {} — {}",
                if v.converged {
                    "CONVERGED"
                } else {
                    "NOT CONVERGED"
                },
                v.reason
            );
        }
        if !self.resilience.is_empty() {
            let _ = writeln!(out, "  resilience:");
            for e in &self.resilience {
                let _ = writeln!(out, "    {e}");
            }
        }
        if let Some(m) = &self.memory {
            let _ = writeln!(out, "  memory: peak_rss {} kB", m.peak_rss_kb);
            for s in &m.stages {
                let _ = writeln!(
                    out,
                    "    {:<28} allocs={} bytes={} peak={}",
                    s.stage,
                    s.allocs,
                    fmt_bytes(s.bytes),
                    fmt_bytes(s.peak_bytes)
                );
            }
        }
        out
    }
}

/// Whether an exported counter name belongs to an advisory counter
/// ([`Counter::advisory`]) and must stay out of the fingerprint.
fn advisory_counter(name: &str) -> bool {
    Counter::ALL
        .iter()
        .any(|c| c.advisory() && c.name() == name)
}

fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3} ms", us as f64 / 1e3)
    } else {
        format!("{us} us")
    }
}

/// One study's trace inside a [`TraceDocument`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyTrace {
    /// Stable study label, e.g. `sar_machine_a`.
    pub label: String,
    /// The study's trace.
    pub trace: TraceReport,
}

/// The `OBS_trace.json` document: one trace per paper study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDocument {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Worker count the traced run used.
    pub workers: usize,
    /// One entry per study, in run order.
    pub studies: Vec<StudyTrace>,
    /// Provenance stamp (schema ver, git rev, host, cargo profile), the
    /// same block the `BENCH_*.json` baselines carry. `None` in pre-v7
    /// artifacts.
    #[serde(default)]
    pub meta: Option<crate::history::BenchMeta>,
    /// End-of-run summary of the live telemetry plane when the run hosted
    /// `--live`; `None` otherwise.
    #[serde(default)]
    pub live: Option<crate::live::LiveSummary>,
}

impl TraceDocument {
    /// Bundles study traces into a document.
    #[must_use]
    pub fn new(workers: usize, studies: Vec<StudyTrace>) -> Self {
        TraceDocument {
            schema_version: SCHEMA_VERSION,
            workers,
            studies,
            meta: None,
            live: None,
        }
    }

    /// Stamps the provenance block.
    #[must_use]
    pub fn with_meta(mut self, meta: crate::history::BenchMeta) -> Self {
        self.meta = Some(meta);
        self
    }

    /// Stamps the live telemetry-plane summary.
    #[must_use]
    pub fn with_live(mut self, live: crate::live::LiveSummary) -> Self {
        self.live = Some(live);
        self
    }

    /// Whether every study's SOM reported a converged verdict. A study with
    /// no verdict at all counts as non-converged — missing telemetry must
    /// fail loudly, not pass silently.
    #[must_use]
    pub fn all_converged(&self) -> bool {
        !self.studies.is_empty()
            && self
                .studies
                .iter()
                .all(|s| s.trace.convergence.as_ref().is_some_and(|v| v.converged))
    }

    /// Renders every study's stage tree.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "OBS trace (schema v{}, {} workers)",
            self.schema_version, self.workers
        );
        for s in &self.studies {
            let _ = writeln!(out, "\nstudy {}", s.label);
            out.push_str(&s.trace.render_tree());
        }
        out
    }
}

/// Structural shape validation for `OBS_trace.json` / `OBS_profile.json`
/// documents — the `repro check-trace` backend for non-Chrome artifacts.
///
/// Deliberately schema-driven over raw JSON rather than a serde round-trip:
/// `#[serde(default)]` would silently paper over a missing or mistyped
/// field, which is exactly the corruption this check exists to catch. On
/// top of the document skeleton it pins the v6 additions (`warm_hit_rate`
/// on epoch records in `[0, 1]`, the `memory` block) and the v7 additions
/// (the `meta` provenance block, the `live` plane summary).
///
/// Returns `(studies, epoch_records)` counts on success.
///
/// # Errors
///
/// Returns a `field: problem` message for the first violation found.
pub fn validate_document(text: &str) -> Result<(usize, usize), String> {
    use serde::Value;

    fn require<'v>(obj: &'v Value, field: &str, at: &str) -> Result<&'v Value, String> {
        obj.get(field)
            .ok_or_else(|| format!("missing `{at}{field}`"))
    }
    fn as_u64(value: &Value, at: &str) -> Result<u64, String> {
        match value {
            Value::UInt(v) => Ok(*v),
            Value::Int(v) if *v >= 0 => Ok(*v as u64),
            _ => Err(format!("`{at}` is not a non-negative integer")),
        }
    }
    fn as_finite(value: &Value, at: &str) -> Result<f64, String> {
        match value {
            Value::Float(v) if v.is_finite() => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::UInt(v) => Ok(*v as f64),
            _ => Err(format!("`{at}` is not a finite number")),
        }
    }
    fn as_str<'v>(value: &'v Value, at: &str) -> Result<&'v str, String> {
        match value {
            Value::Str(v) => Ok(v),
            _ => Err(format!("`{at}` is not a string")),
        }
    }
    fn as_array<'v>(value: &'v Value, at: &str) -> Result<&'v [Value], String> {
        match value {
            Value::Array(v) => Ok(v),
            _ => Err(format!("`{at}` is not an array")),
        }
    }

    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if !matches!(root, Value::Object(_)) {
        return Err("root is not an object".to_owned());
    }
    let version = as_u64(require(&root, "schema_version", "")?, "schema_version")?;
    if version > u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "`schema_version` {version} is newer than this reader's v{SCHEMA_VERSION}"
        ));
    }
    as_u64(require(&root, "workers", "")?, "workers")?;
    let studies = as_array(require(&root, "studies", "")?, "studies")?;
    let mut epoch_records = 0usize;
    for (i, study) in studies.iter().enumerate() {
        let here = format!("studies[{i}].");
        as_str(require(study, "label", &here)?, &format!("{here}label"))?;
        let trace = require(study, "trace", &here)?;
        if !matches!(trace, Value::Object(_)) {
            return Err(format!("`{here}trace` is not an object"));
        }
        let there = format!("{here}trace.");
        for field in ["spans", "counters", "histograms", "som_epochs"] {
            as_array(require(trace, field, &there)?, &format!("{there}{field}"))?;
        }
        let epochs = as_array(trace.get("som_epochs").expect("checked above"), "")?;
        for (j, epoch) in epochs.iter().enumerate() {
            let at = format!("{there}som_epochs[{j}].");
            as_u64(require(epoch, "epoch", &at)?, &format!("{at}epoch"))?;
            for field in ["quantization_error", "topographic_error", "sigma"] {
                as_finite(require(epoch, field, &at)?, &format!("{at}{field}"))?;
            }
            // v6: advisory warm hit rate — absent, null, or a rate.
            match epoch.get("warm_hit_rate") {
                None | Some(Value::Null) => {}
                Some(value) => {
                    let field = format!("{at}warm_hit_rate");
                    let rate = as_finite(value, &field)?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("`{field}` {rate} outside [0, 1]"));
                    }
                }
            }
        }
        epoch_records += epochs.len();
        // v4/v6: the memory block — absent, null, or fully shaped.
        match trace.get("memory") {
            None | Some(Value::Null) => {}
            Some(memory) => {
                let at = format!("{there}memory.");
                as_u64(
                    require(memory, "peak_rss_kb", &at)?,
                    &format!("{at}peak_rss_kb"),
                )?;
                let stages = as_array(require(memory, "stages", &at)?, &format!("{at}stages"))?;
                for (k, stage) in stages.iter().enumerate() {
                    let at = format!("{at}stages[{k}].");
                    as_str(require(stage, "stage", &at)?, &format!("{at}stage"))?;
                    for field in ["span", "allocs", "bytes", "peak_bytes"] {
                        as_u64(require(stage, field, &at)?, &format!("{at}{field}"))?;
                    }
                }
            }
        }
    }
    // v7: the provenance stamp — absent, null, or fully shaped.
    match root.get("meta") {
        None | Some(Value::Null) => {}
        Some(meta) => {
            as_u64(
                require(meta, "schema_version", "meta.")?,
                "meta.schema_version",
            )?;
            as_u64(require(meta, "captured_ms", "meta.")?, "meta.captured_ms")?;
            for field in ["git_rev", "host", "cargo_profile"] {
                as_str(require(meta, field, "meta.")?, &format!("meta.{field}"))?;
            }
        }
    }
    // v7: the live telemetry-plane summary — absent, null, or fully shaped.
    match root.get("live") {
        None | Some(Value::Null) => {}
        Some(live) => {
            as_str(require(live, "addr", "live.")?, "live.addr")?;
            as_u64(
                require(live, "events_published", "live.")?,
                "live.events_published",
            )?;
            let requests = require(live, "requests", "live.")?;
            for field in ["metrics", "healthz", "readyz", "trace", "events"] {
                as_u64(
                    require(requests, field, "live.requests.")?,
                    &format!("live.requests.{field}"),
                )?;
            }
        }
    }
    Ok((studies.len(), epoch_records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Counter, EpochRecord};

    fn sample_report() -> TraceReport {
        let c = Collector::enabled();
        {
            let _root = c.span("pipeline");
            let _child = c.span("pipeline.som");
            c.add(Counter::BmuSearches, 13);
            c.record_epoch(EpochRecord {
                epoch: 0,
                quantization_error: 0.5,
                topographic_error: 0.1,
                sigma: 3.0,
                warm_hit_rate: None,
            });
            c.record_merge(0.75);
        }
        c.report().unwrap()
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn fingerprint_ignores_clocks() {
        let a = sample_report();
        let mut b = a.clone();
        for s in &mut b.spans {
            s.start_us += 1000;
            s.duration_us += 1000;
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_sees_counter_changes() {
        let a = sample_report();
        let mut b = a.clone();
        b.counters[0].value += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn advisory_warm_telemetry_does_not_perturb_the_fingerprint() {
        let a = sample_report();
        let mut b = a.clone();
        for c in &mut b.counters {
            if c.name == "bmu_warm_hits" || c.name == "bmu_exact_rescans" {
                c.value += 1234;
            }
        }
        for e in &mut b.som_epochs {
            e.warm_hit_rate = Some(0.875);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        // ...but the rendered tree narrates the warm split.
        assert!(b.render_tree().contains("warm bmu:"));
        assert!(!a.render_tree().contains("warm bmu:"));
    }

    #[test]
    fn memory_block_present_iff_enabled() {
        // Memory off (the default): no block at all.
        assert!(sample_report().memory.is_none());

        // Memory on: the block exists even though this unit-test binary has
        // no tracking allocator installed — RSS-only degradation.
        let c = Collector::enabled_with(crate::ObsConfig {
            memory: true,
            ..crate::ObsConfig::default()
        });
        {
            let _s = c.span("stage");
        }
        let r = c.report().unwrap();
        let m = r.memory.clone().expect("memory block when enabled");
        assert!(
            m.stages.is_empty(),
            "no span attribution without the tracking allocator"
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn memory_does_not_perturb_the_fingerprint() {
        let a = sample_report();
        let mut b = a.clone();
        b.memory = Some(MemoryReport {
            peak_rss_kb: 12345,
            stages: vec![StageMemory {
                span: 0,
                stage: "pipeline".into(),
                allocs: 10,
                bytes: 100,
                peak_bytes: 50,
            }],
        });
        assert_eq!(a.fingerprint(), b.fingerprint());
        // ...but the rendered tree does show it.
        assert!(b.render_tree().contains("memory: peak_rss 12345 kB"));
        assert!(b.render_tree().contains("allocs=10"));
    }

    #[test]
    fn v3_documents_without_memory_field_still_parse() {
        let r = sample_report();
        let json = serde_json::to_string(&r).unwrap();
        // A v3 artifact simply has no `memory` key.
        let v3 = json.replace(",\"memory\":null", "");
        assert_ne!(v3, json, "compact encoding should carry the null field");
        let back: TraceReport = serde_json::from_str(&v3).unwrap();
        assert!(back.memory.is_none());
    }

    #[test]
    fn render_tree_mentions_stages_and_counters() {
        let text = sample_report().render_tree();
        assert!(text.contains("pipeline"));
        assert!(text.contains("pipeline.som"));
        assert!(text.contains("bmu_searches"));
        assert!(text.contains("merge_distance"));
    }

    #[test]
    fn resilience_events_survive_export_and_fingerprint() {
        let c = Collector::enabled();
        c.record_resilience(crate::resilience::ResilienceEvent::Retry {
            attempt: 2,
            epochs: 400,
            seed: 7,
        });
        c.record_resilience(crate::resilience::ResilienceEvent::Degraded {
            after_attempts: 3,
            mode: "raw_space".into(),
        });
        let r = c.report().unwrap();
        assert_eq!(r.retry_count(), 1);
        assert!(r.degraded());
        assert!(r.fingerprint().contains("resilience 1 degraded"));
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        // The rendered tree narrates the fallback.
        assert!(r.render_tree().contains("degraded to raw_space"));
    }

    #[test]
    fn document_convergence_gate() {
        let r = sample_report();
        let doc = TraceDocument::new(
            4,
            vec![StudyTrace {
                label: "s1".into(),
                trace: r.clone(),
            }],
        );
        // No verdict recorded -> not converged.
        assert!(!doc.all_converged());
        assert!(!TraceDocument::new(4, vec![]).all_converged());
        let mut converged = r;
        converged.convergence = Some(crate::convergence::assess(&[
            EpochRecord {
                epoch: 0,
                quantization_error: 1.0,
                topographic_error: 0.0,
                sigma: 1.0,
                warm_hit_rate: None,
            },
            EpochRecord {
                epoch: 1,
                quantization_error: 0.99,
                topographic_error: 0.0,
                sigma: 1.0,
                warm_hit_rate: None,
            },
            EpochRecord {
                epoch: 2,
                quantization_error: 0.99,
                topographic_error: 0.0,
                sigma: 1.0,
                warm_hit_rate: None,
            },
            EpochRecord {
                epoch: 3,
                quantization_error: 0.99,
                topographic_error: 0.0,
                sigma: 1.0,
                warm_hit_rate: None,
            },
            EpochRecord {
                epoch: 4,
                quantization_error: 0.99,
                topographic_error: 0.0,
                sigma: 1.0,
                warm_hit_rate: None,
            },
            EpochRecord {
                epoch: 5,
                quantization_error: 0.99,
                topographic_error: 0.0,
                sigma: 1.0,
                warm_hit_rate: None,
            },
        ]));
        let doc = TraceDocument::new(
            4,
            vec![StudyTrace {
                label: "s1".into(),
                trace: converged,
            }],
        );
        assert!(
            doc.all_converged(),
            "{:?}",
            doc.studies[0].trace.convergence
        );
        let json = serde_json::to_string(&doc).unwrap();
        let back: TraceDocument = serde_json::from_str(&json).unwrap();
        assert_eq!(doc, back);
    }

    fn stamped_document() -> TraceDocument {
        TraceDocument::new(
            2,
            vec![StudyTrace {
                label: "synthetic".into(),
                trace: sample_report(),
            }],
        )
        .with_meta(crate::history::BenchMeta::capture())
        .with_live(crate::live::LiveSummary {
            addr: "127.0.0.1:9184".into(),
            requests: crate::live::LiveRequestCounts::default(),
            events_published: 3,
        })
    }

    /// Navigates into an object field of the shim's [`serde::Value`].
    fn field_mut<'v>(value: &'v mut serde::Value, name: &str) -> &'v mut serde::Value {
        match value {
            serde::Value::Object(fields) => {
                &mut fields
                    .iter_mut()
                    .find(|(k, _)| k == name)
                    .unwrap_or_else(|| panic!("field `{name}`"))
                    .1
            }
            _ => panic!("`{name}` parent is not an object"),
        }
    }

    fn item_mut(value: &mut serde::Value, index: usize) -> &mut serde::Value {
        match value {
            serde::Value::Array(items) => &mut items[index],
            _ => panic!("not an array"),
        }
    }

    fn drop_field(value: &mut serde::Value, name: &str) {
        match value {
            serde::Value::Object(fields) => fields.retain(|(k, _)| k != name),
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn meta_and_live_stamps_round_trip_and_stay_optional() {
        let doc = stamped_document();
        let json = serde_json::to_string(&doc).unwrap();
        let back: TraceDocument = serde_json::from_str(&json).unwrap();
        assert_eq!(doc, back);
        // A v6-style document without the stamps still parses.
        let bare = serde_json::to_string(&TraceDocument::new(1, Vec::new())).unwrap();
        let mut value: serde::Value = serde_json::from_str(&bare).unwrap();
        drop_field(&mut value, "meta");
        drop_field(&mut value, "live");
        let back: TraceDocument =
            serde_json::from_str(&serde_json::to_string(&value).unwrap()).unwrap();
        assert_eq!(back.meta, None);
        assert_eq!(back.live, None);
    }

    #[test]
    fn validate_document_accepts_a_real_stamped_document() {
        let json = serde_json::to_string(&stamped_document()).unwrap();
        assert_eq!(validate_document(&json), Ok((1, 1)));
    }

    #[test]
    fn validate_document_rejects_shape_violations() {
        let doc = stamped_document();
        let json = serde_json::to_string(&doc).unwrap();
        let base: serde::Value = serde_json::from_str(&json).unwrap();
        let rendered = |v: &serde::Value| serde_json::to_string(v).unwrap();

        let mut missing_workers = base.clone();
        drop_field(&mut missing_workers, "workers");
        let err = validate_document(&rendered(&missing_workers)).unwrap_err();
        assert!(err.contains("workers"), "{err}");

        let mut future = base.clone();
        *field_mut(&mut future, "schema_version") =
            serde::Value::UInt(u64::from(SCHEMA_VERSION) + 1);
        let err = validate_document(&rendered(&future)).unwrap_err();
        assert!(err.contains("newer"), "{err}");

        let mut bad_rate = base.clone();
        let epoch = item_mut(
            field_mut(
                field_mut(item_mut(field_mut(&mut bad_rate, "studies"), 0), "trace"),
                "som_epochs",
            ),
            0,
        );
        *field_mut(epoch, "warm_hit_rate") = serde::Value::Float(1.5);
        let err = validate_document(&rendered(&bad_rate)).unwrap_err();
        assert!(err.contains("warm_hit_rate"), "{err}");

        let mut bad_memory = base.clone();
        let trace = field_mut(item_mut(field_mut(&mut bad_memory, "studies"), 0), "trace");
        *field_mut(trace, "memory") =
            serde::Value::Object(vec![("stages".to_owned(), serde::Value::Array(Vec::new()))]);
        let err = validate_document(&rendered(&bad_memory)).unwrap_err();
        assert!(err.contains("peak_rss_kb"), "{err}");

        let mut bad_meta = base.clone();
        *field_mut(field_mut(&mut bad_meta, "meta"), "git_rev") = serde::Value::UInt(42);
        let err = validate_document(&rendered(&bad_meta)).unwrap_err();
        assert!(err.contains("git_rev"), "{err}");

        let mut bad_live = base;
        drop_field(
            field_mut(field_mut(&mut bad_live, "live"), "requests"),
            "metrics",
        );
        let err = validate_document(&rendered(&bad_live)).unwrap_err();
        assert!(err.contains("metrics"), "{err}");
    }

    #[test]
    fn validate_document_tolerates_absent_optional_blocks() {
        // Null / absent warm_hit_rate, memory, meta, live all pass.
        let doc = TraceDocument::new(
            1,
            vec![StudyTrace {
                label: "s".into(),
                trace: sample_report(),
            }],
        );
        let json = serde_json::to_string(&doc).unwrap();
        assert_eq!(validate_document(&json), Ok((1, 1)));
    }
}
