//! `hiermeans-obs`: zero-dependency tracing, metrics, and convergence
//! telemetry for the hiermeans pipeline.
//!
//! The paper's methodology is a multi-stage statistical pipeline — workload
//! characterization → SOM → agglomerative clustering → hierarchical-mean
//! scoring — where silent mis-convergence produces plausible-but-wrong
//! single numbers. This crate makes every stage report what it is doing:
//!
//! * [`span`] — RAII stage spans with monotonic timing and nesting, forming
//!   the trace's stage tree.
//! * [`metrics`] — a closed registry of hot-path counters (BMU searches,
//!   distance evaluations, linkage merges, score-sweep cells) and
//!   fixed-bucket histograms (epoch durations, merge distances), with
//!   per-chunk [`CounterBuf`]s merged in chunk order so traces are
//!   reproducible across worker counts.
//! * [`convergence`] — per-epoch quantization/topographic-error records and
//!   the [`ConvergenceVerdict`] that flags an under-converged SOM.
//! * [`report`] — the stable `OBS_trace.json` schema ([`TraceReport`],
//!   [`report::TraceDocument`]) and a human-readable stage tree.
//!
//! # Zero cost when disabled
//!
//! Everything hangs off a [`Collector`] handle. The default
//! [`Collector::disabled`] holds no allocation; every method starts with a
//! branch on that `Option` and returns immediately, so instrumented code
//! pays one predictable branch per call and hot loops pay nothing (they
//! buffer into local [`CounterBuf`]s that are only flushed when enabled).
//!
//! # Example
//!
//! ```
//! use hiermeans_obs::{Collector, Counter};
//!
//! let collector = Collector::enabled();
//! {
//!     let _stage = collector.span("demo.stage");
//!     collector.add(Counter::DistanceEvaluations, 42);
//! }
//! let report = collector.report().unwrap();
//! assert_eq!(report.spans[0].name, "demo.stage");
//! assert_eq!(report.counter("distance_evaluations"), Some(42));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]

pub mod chrome;
pub mod convergence;
pub mod dashboard;
pub mod hash;
pub mod history;
pub mod jsonl;
pub mod lanes;
pub mod live;
pub mod memhook;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod resilience;
pub mod span;
pub mod stages;

use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use convergence::{ConvergenceVerdict, EpochRecord};
pub use hash::{fnv1a64, fnv1a64_hex, Fnv1a64};
pub use jsonl::{JsonlScan, TornTail};
pub use lanes::{LaneBuf, LaneClock, LaneInterval, LaneSetExport, LaneWorkerExport};
pub use live::{LivePublisher, LiveServer, LiveSummary, ProgressEvent};
pub use metrics::{Counter, CounterBuf, CounterExport, HistogramExport, HistogramId};
pub use report::{
    EventExport, MemoryReport, StageMemory, StudyTrace, TraceDocument, TraceReport, SCHEMA_VERSION,
};
pub use resilience::ResilienceEvent;
pub use span::{SpanExport, SpanGuard};

use lanes::LaneSetRecord;
use metrics::Histogram;
use span::SpanRecord;

/// Tuning knobs for an enabled collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record SOM epoch quality (QE/TE) every this many epochs; `0` turns
    /// per-epoch quality telemetry off while keeping spans and counters.
    /// Quality telemetry costs one extra BMU pass per sampled epoch, so the
    /// near-zero-overhead configurations use `0` and convergence auditing
    /// uses `1`.
    pub epoch_quality_stride: usize,
    /// Record per-worker chunk timelines ([`LaneBuf`]) in the parallel hot
    /// paths. On by default: lane recording is two clock reads and one push
    /// into a pre-allocated buffer per chunk, within noise of off (see the
    /// `obs_overhead` bench).
    pub lanes: bool,
    /// Record memory telemetry: per-span allocation stats via
    /// [`memhook`] (when the hosting binary installed the tracking
    /// allocator) and process peak-RSS sampling. Off by default — with it
    /// off the collector touches no allocator state at all, so traces and
    /// pipeline outputs are bitwise identical to a memory-unaware build.
    /// The `repro` subcommands turn it on.
    pub memory: bool,
    /// Publish live snapshots and progress events to an attached
    /// [`LivePublisher`]. Off by default; even when set, publishing is a
    /// no-op unless a publisher was attached via
    /// [`Collector::enabled_live`], so plain `enabled_with` collectors
    /// never pay for it. Publishing never writes into the recorded trace
    /// state: live on vs. off leaves every output bitwise identical.
    pub live: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            epoch_quality_stride: 1,
            lanes: true,
            memory: false,
            live: false,
        }
    }
}

/// One recorded point event (e.g. a diagnostic formerly printed to stdout).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EventRecord {
    pub(crate) name: &'static str,
    pub(crate) detail: String,
    pub(crate) span: Option<usize>,
    pub(crate) at_us: u64,
}

#[derive(Debug)]
pub(crate) struct State {
    pub(crate) spans: Vec<SpanRecord>,
    pub(crate) open: Vec<usize>,
    pub(crate) counters: [u64; Counter::ALL.len()],
    pub(crate) histograms: Vec<Histogram>,
    pub(crate) epochs: Vec<EpochRecord>,
    pub(crate) merge_distances: Vec<f64>,
    pub(crate) verdict: Option<ConvergenceVerdict>,
    pub(crate) events: Vec<EventRecord>,
    pub(crate) resilience: Vec<ResilienceEvent>,
    pub(crate) lane_sets: Vec<LaneSetRecord>,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    config: ObsConfig,
    /// Whether the tracking allocator is installed AND `config.memory` is
    /// set — i.e. per-span allocation attribution is actually available.
    hooked: bool,
    /// Live telemetry sink; only consulted when `config.live` is set.
    live: Option<LivePublisher>,
    state: Mutex<State>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if self.config.memory {
            memhook::rss_sampler_release();
            memhook::tracking_release();
        }
    }
}

/// A shared handle to one trace in progress.
///
/// Clones share the same trace; the disabled handle (the [`Default`]) is a
/// no-op on every method. The collector is thread-aware: any thread may add
/// counters or open spans, but the intended pattern is that stage spans
/// live on the coordinating thread while scoped workers fill per-chunk
/// [`CounterBuf`]s that the coordinator merges in chunk order — which keeps
/// the exported trace identical for any worker count.
#[derive(Debug, Clone, Default)]
pub struct Collector(Option<Arc<Inner>>);

impl PartialEq for Collector {
    /// Handles compare equal when they share a trace (or are both
    /// disabled) — the semantics configuration equality wants.
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Slowest chunk over mean chunk duration for one run; `1.0` when all
/// durations are zero (nothing measurable, so nothing imbalanced).
fn imbalance(max: u64, sum: u64, count: u64) -> f64 {
    if sum == 0 {
        1.0
    } else {
        max as f64 * count as f64 / sum as f64
    }
}

impl Collector {
    /// The no-op collector: no allocation, every method returns immediately.
    #[must_use]
    pub fn disabled() -> Self {
        Collector(None)
    }

    /// A live collector with the default [`ObsConfig`].
    #[must_use]
    pub fn enabled() -> Self {
        Self::enabled_with(ObsConfig::default())
    }

    /// A live collector with explicit tuning.
    #[must_use]
    pub fn enabled_with(config: ObsConfig) -> Self {
        Self::construct(config, None)
    }

    /// A live collector that also feeds a [`LiveServer`] through
    /// `publisher`: every [`Collector::record_epoch`] (already gated by the
    /// epoch-quality stride) and the final [`Collector::report`] publish a
    /// snapshot, and the `live_*` progress hooks emit SSE events.
    /// Publishing never touches the recorded trace state, so outputs stay
    /// bitwise identical to a publisher-less collector.
    #[must_use]
    pub fn enabled_live(config: ObsConfig, publisher: LivePublisher) -> Self {
        Self::construct(
            ObsConfig {
                live: true,
                ..config
            },
            Some(publisher),
        )
    }

    fn construct(config: ObsConfig, live: Option<LivePublisher>) -> Self {
        let hooked = if config.memory {
            memhook::rss_sampler_acquire();
            // Registers this collector for worker-tally accounting; the
            // matching releases happen in `Drop for Inner`.
            memhook::tracking_activate()
        } else {
            false
        };
        Collector(Some(Arc::new(Inner {
            origin: Instant::now(),
            config,
            hooked,
            live,
            state: Mutex::new(State {
                spans: Vec::new(),
                open: Vec::new(),
                counters: [0; Counter::ALL.len()],
                histograms: HistogramId::ALL
                    .iter()
                    .map(|&id| Histogram::new(id))
                    .collect(),
                epochs: Vec::new(),
                merge_distances: Vec::new(),
                verdict: None,
                events: Vec::new(),
                resilience: Vec::new(),
                lane_sets: Vec::new(),
            }),
        })))
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The SOM epoch-quality sampling stride: `0` when disabled or when
    /// quality telemetry is turned off, otherwise the configured stride.
    #[must_use]
    pub fn epoch_quality_stride(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.config.epoch_quality_stride)
    }

    fn elapsed_us(inner: &Inner) -> u64 {
        u64::try_from(inner.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Opens a span named `name`, nested under the innermost open span.
    /// The span closes (and its duration is stamped) when the guard drops.
    /// With memory telemetry hooked, the guard also opens a
    /// [`memhook::ThreadScope`] so allocations on the coordinating thread
    /// (plus parallel worker tallies) are attributed to this span.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let index = self.0.as_ref().map(|inner| {
            let start_us = Self::elapsed_us(inner);
            let mut state = inner.state.lock().expect("obs state poisoned");
            let index = state.spans.len();
            let parent = state.open.last().copied();
            state.spans.push(SpanRecord {
                name,
                parent,
                start_us,
                duration_us: 0,
                closed: false,
                mem: None,
            });
            state.open.push(index);
            index
        });
        // The scope opens AFTER the span record is pushed, so the trace's
        // own bookkeeping allocation charges the parent, not this span.
        let mem = self
            .0
            .as_ref()
            .and_then(|inner| inner.hooked.then(memhook::ThreadScope::open));
        SpanGuard {
            collector: self.clone(),
            index,
            mem,
        }
    }

    pub(crate) fn end_span(&self, index: usize, mem: Option<memhook::MemStats>) {
        if let Some(inner) = self.0.as_ref() {
            let now_us = Self::elapsed_us(inner);
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.open.retain(|&i| i != index);
            if let Some(record) = state.spans.get_mut(index) {
                record.duration_us = now_us.saturating_sub(record.start_us);
                record.closed = true;
                record.mem = mem;
            }
        }
    }

    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = self.0.as_ref() {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.counters[counter as usize] += n;
        }
    }

    /// Merges a per-chunk counter buffer into the trace. Callers merge
    /// chunk buffers in chunk order and flush once per parallel section.
    pub fn flush(&self, buf: &CounterBuf) {
        if let Some(inner) = self.0.as_ref() {
            let mut state = inner.state.lock().expect("obs state poisoned");
            for (acc, v) in state.counters.iter_mut().zip(buf.counts().iter()) {
                *acc += v;
            }
        }
    }

    /// Records one observation into a fixed-bucket histogram.
    pub fn record(&self, id: HistogramId, value: f64) {
        if let Some(inner) = self.0.as_ref() {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.histograms[id as usize].record(value);
        }
    }

    /// A copy of this collector's origin clock for stamping worker-lane
    /// intervals, or `None` when the collector is disabled or lane
    /// recording is configured off — so instrumented hot paths pay zero
    /// clock reads unless lanes are actually wanted.
    #[must_use]
    pub fn lane_clock(&self) -> Option<LaneClock> {
        self.0
            .as_ref()
            .and_then(|inner| inner.config.lanes.then(|| LaneClock::new(inner.origin)))
    }

    /// Attaches one stage's recorded worker lanes under the innermost open
    /// span, feeding the chunk-duration and per-run imbalance histograms.
    /// Callers accumulate a [`LaneBuf`] across a stage's runs (e.g. all
    /// training epochs) and attach once — a single clone of the interval
    /// buffer, keeping steady-state loops allocation-free.
    pub fn attach_lanes(&self, stage: &'static str, n_chunks: usize, buf: &LaneBuf) {
        if let Some(inner) = self.0.as_ref() {
            if !inner.config.lanes {
                return;
            }
            let mut state = inner.state.lock().expect("obs state poisoned");
            let span = state.open.last().copied();
            // Chunk-duration observations plus one imbalance ratio
            // (max/mean duration) per run.
            let mut run = u32::MAX;
            let (mut run_max, mut run_sum, mut run_count) = (0u64, 0u64, 0u64);
            for iv in buf.intervals() {
                let duration = iv.duration_us();
                state.histograms[HistogramId::ChunkDurationMicros as usize].record(duration as f64);
                if iv.run != run {
                    if run_count > 0 {
                        state.histograms[HistogramId::ChunkImbalance as usize]
                            .record(imbalance(run_max, run_sum, run_count));
                    }
                    run = iv.run;
                    (run_max, run_sum, run_count) = (duration, duration, 1);
                } else {
                    run_max = run_max.max(duration);
                    run_sum += duration;
                    run_count += 1;
                }
            }
            if run_count > 0 {
                state.histograms[HistogramId::ChunkImbalance as usize]
                    .record(imbalance(run_max, run_sum, run_count));
            }
            state.lane_sets.push(LaneSetRecord {
                stage,
                span,
                n_chunks,
                buf: buf.clone(),
            });
        }
    }

    /// Records one SOM epoch's quality telemetry.
    pub fn record_epoch(&self, record: EpochRecord) {
        if let Some(inner) = self.0.as_ref() {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.epochs.push(record);
            // Live snapshot publishing rides the epoch-quality stride:
            // `record_epoch` only fires on sampled epochs, so an attached
            // server sees a fresh partial trace at exactly that cadence.
            // The export is read-only over `state` and the publish happens
            // after the lock drops, so hot paths never wait on the plane.
            if inner.config.live {
                if let Some(publisher) = inner.live.as_ref() {
                    let peak_rss_kb = inner
                        .config
                        .memory
                        .then(|| memhook::peak_rss_kb().unwrap_or(0));
                    let snapshot = report::export(&state, peak_rss_kb);
                    drop(state);
                    publisher.publish_snapshot(snapshot);
                }
            }
        }
    }

    /// The attached live publisher, when this collector both carries one
    /// and has `config.live` set.
    fn live_publisher(&self) -> Option<&LivePublisher> {
        self.0
            .as_ref()
            .filter(|inner| inner.config.live)
            .and_then(|inner| inner.live.as_ref())
    }

    /// Publishes one finished training epoch to an attached live plane
    /// (quality values only on sampled epochs). No-op without one.
    pub fn live_epoch(
        &self,
        epoch: usize,
        total_epochs: usize,
        quantization_error: Option<f64>,
        warm_hit_rate: Option<f64>,
        epoch_duration_us: u64,
    ) {
        if let Some(publisher) = self.live_publisher() {
            publisher.publish_epoch(
                epoch,
                total_epochs,
                quantization_error,
                warm_hit_rate,
                epoch_duration_us,
            );
        }
    }

    /// Publishes one out-of-core streaming strip advance to an attached
    /// live plane. No-op without one.
    pub fn live_strip(&self, epoch: usize, strip: usize, total_strips: usize) {
        if let Some(publisher) = self.live_publisher() {
            publisher.publish_strip(epoch, strip, total_strips);
        }
    }

    /// Publishes store-ingestion outcome deltas (accepted, rejected) to an
    /// attached live plane, which accumulates the running totals. No-op
    /// without one.
    pub fn live_ingest(&self, accepted_delta: u64, rejected_delta: u64) {
        if let Some(publisher) = self.live_publisher() {
            publisher.publish_ingest(accepted_delta, rejected_delta);
        }
    }

    /// Records one agglomerative merge: appends the merge-distance
    /// trajectory, feeds the merge-distance histogram, and bumps
    /// [`Counter::LinkageMerges`].
    pub fn record_merge(&self, distance: f64) {
        if let Some(inner) = self.0.as_ref() {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.merge_distances.push(distance);
            state.histograms[HistogramId::MergeDistance as usize].record(distance);
            state.counters[Counter::LinkageMerges as usize] += 1;
        }
    }

    /// Records a point event under the innermost open span — the structured
    /// replacement for ad-hoc stdout diagnostics in library crates.
    pub fn event(&self, name: &'static str, detail: impl Into<String>) {
        if let Some(inner) = self.0.as_ref() {
            let at_us = Self::elapsed_us(inner);
            let mut state = inner.state.lock().expect("obs state poisoned");
            let span = state.open.last().copied();
            let detail = detail.into();
            state.events.push(EventRecord {
                name,
                detail,
                span,
                at_us,
            });
        }
    }

    /// Records one self-healing event (retry, degradation, injected fault)
    /// into the trace's `resilience` field.
    pub fn record_resilience(&self, event: ResilienceEvent) {
        if let Some(inner) = self.0.as_ref() {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.resilience.push(event);
        }
    }

    /// The self-healing events recorded so far (empty when disabled).
    #[must_use]
    pub fn resilience_events(&self) -> Vec<ResilienceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner
                .state
                .lock()
                .expect("obs state poisoned")
                .resilience
                .clone()
        })
    }

    /// Stores the training run's convergence verdict (last write wins).
    pub fn set_verdict(&self, verdict: ConvergenceVerdict) {
        if let Some(inner) = self.0.as_ref() {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.verdict = Some(verdict);
        }
    }

    /// Whether memory telemetry was requested for this collector.
    #[must_use]
    pub fn memory_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|inner| inner.config.memory)
    }

    /// Exports the trace recorded so far; `None` for a disabled collector.
    #[must_use]
    pub fn report(&self) -> Option<TraceReport> {
        self.0.as_ref().map(|inner| {
            let state = inner.state.lock().expect("obs state poisoned");
            let peak_rss_kb = inner
                .config
                .memory
                .then(|| memhook::peak_rss_kb().unwrap_or(0));
            let report = report::export(&state, peak_rss_kb);
            drop(state);
            // The final export is the most complete snapshot the plane
            // will ever see; push it so `/trace` and `/metrics` end the
            // run consistent with the written artifact.
            if inner.config.live {
                if let Some(publisher) = inner.live.as_ref() {
                    publisher.publish_snapshot(report.clone());
                }
            }
            report
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::disabled();
        assert!(!c.is_enabled());
        assert_eq!(c.epoch_quality_stride(), 0);
        {
            let _g = c.span("nothing");
            c.add(Counter::BmuSearches, 1);
            c.record(HistogramId::MergeDistance, 1.0);
            c.record_merge(2.0);
            c.event("e", "detail");
        }
        assert!(c.report().is_none());
    }

    #[test]
    fn spans_nest_under_the_open_span() {
        let c = Collector::enabled();
        {
            let _outer = c.span("outer");
            {
                let _inner = c.span("inner");
            }
            let _sibling = c.span("sibling");
        }
        let r = c.report().unwrap();
        assert_eq!(r.spans.len(), 3);
        assert_eq!(r.spans[0].name, "outer");
        assert_eq!(r.spans[0].parent, None);
        assert_eq!(r.spans[1].parent, Some(0));
        assert_eq!(r.spans[2].parent, Some(0));
    }

    #[test]
    fn clones_share_the_trace() {
        let c = Collector::enabled();
        let d = c.clone();
        d.add(Counter::LinkageMerges, 3);
        assert_eq!(c.report().unwrap().counter("linkage_merges"), Some(3));
        assert_eq!(c, d);
        assert_ne!(c, Collector::enabled());
        assert_eq!(Collector::disabled(), Collector::disabled());
    }

    #[test]
    fn flush_merges_chunk_buffers() {
        let c = Collector::enabled();
        let mut chunk0 = CounterBuf::new();
        chunk0.add(Counter::DistanceEvaluations, 10);
        let mut chunk1 = CounterBuf::new();
        chunk1.add(Counter::DistanceEvaluations, 32);
        let mut merged = CounterBuf::new();
        merged.merge(&chunk0);
        merged.merge(&chunk1);
        c.flush(&merged);
        assert_eq!(
            c.report().unwrap().counter("distance_evaluations"),
            Some(42)
        );
    }

    #[test]
    fn merge_trajectory_and_histogram_agree() {
        let c = Collector::enabled();
        for d in [0.1, 0.4, 2.0] {
            c.record_merge(d);
        }
        let r = c.report().unwrap();
        assert_eq!(r.merge_distances, vec![0.1, 0.4, 2.0]);
        assert_eq!(r.counter("linkage_merges"), Some(3));
        let h = r.histogram("merge_distance").unwrap();
        assert_eq!(h.total, 3);
    }

    #[test]
    fn stride_zero_disables_quality_sampling() {
        let c = Collector::enabled_with(ObsConfig {
            epoch_quality_stride: 0,
            ..ObsConfig::default()
        });
        assert!(c.is_enabled());
        assert_eq!(c.epoch_quality_stride(), 0);
        assert_eq!(Collector::enabled().epoch_quality_stride(), 1);
    }

    #[test]
    fn lane_clock_respects_config_and_enablement() {
        assert!(Collector::disabled().lane_clock().is_none());
        assert!(Collector::enabled().lane_clock().is_some());
        let off = Collector::enabled_with(ObsConfig {
            lanes: false,
            ..ObsConfig::default()
        });
        assert!(off.lane_clock().is_none());
        // Attaching to a lanes-off collector records nothing.
        let mut buf = LaneBuf::new();
        buf.record(0, 0, 0, 5);
        buf.end_run();
        off.attach_lanes("stage", 1, &buf);
        assert!(off.report().unwrap().lanes.is_empty());
    }

    #[test]
    fn attach_lanes_records_under_open_span_and_feeds_histograms() {
        let c = Collector::enabled();
        {
            let _root = c.span("root");
            let _inner = c.span("inner");
            let mut buf = LaneBuf::with_capacity(4);
            // Run 0: durations 10 and 30 (imbalance 1.5); run 1: one chunk.
            buf.record(0, 0, 0, 10);
            buf.record(1, 1, 0, 30);
            buf.end_run();
            buf.record(0, 0, 40, 50);
            buf.end_run();
            c.attach_lanes("stage.lanes", 2, &buf);
        }
        let r = c.report().unwrap();
        assert_eq!(r.lanes.len(), 1);
        let lane = r.lane("stage.lanes").unwrap();
        assert_eq!(lane.span, Some(1));
        assert_eq!(lane.n_chunks, 2);
        assert_eq!(lane.runs, 2);
        assert_eq!(lane.intervals.len(), 3);
        let chunk = r.histogram("chunk_duration_us").unwrap();
        assert_eq!(chunk.total, 3);
        assert_eq!(chunk.sum, 50.0);
        let imbalance = r.histogram("chunk_imbalance").unwrap();
        assert_eq!(imbalance.total, 2);
        assert!((imbalance.max - 1.5).abs() < 1e-12);
        assert!((imbalance.min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lane_clock_is_monotonic() {
        let c = Collector::enabled();
        let clock = c.lane_clock().unwrap();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }
}
