//! Chrome trace-event export: `OBS_profile.trace.json`.
//!
//! Converts a [`TraceDocument`] into the Chrome trace-event JSON format
//! (the object form, `{"traceEvents": [...]}`) loadable in Perfetto or
//! `chrome://tracing`. Every emitted event is a complete `ph: "X"` duration
//! event:
//!
//! * `pid` — the study index (one process row per paper study),
//! * `tid 0` — the coordinator lane: one event per span of the stage tree,
//! * `tid w+1` — worker lane `w`: one event per chunk interval, named
//!   `stage#chunk`.
//!
//! [`validate`] checks an arbitrary JSON string against that shape — the CI
//! profile job runs it (via `repro check-trace`) on the freshly written
//! artifact so a schema regression fails the build, not the person opening
//! the trace.

use serde::{Serialize, Value};

use crate::report::TraceDocument;

/// The trace-event JSON object form. The field name is the format's, not
/// ours, hence the non-snake-case exception.
#[allow(non_snake_case)]
#[derive(Debug, Serialize)]
struct TraceEventDocument {
    traceEvents: Vec<TraceEvent>,
}

/// One complete duration event.
#[derive(Debug, Serialize)]
struct TraceEvent {
    name: String,
    cat: String,
    ph: String,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
}

/// Renders `doc` as Chrome trace-event JSON.
#[must_use]
pub fn to_chrome_trace(doc: &TraceDocument) -> String {
    let mut events = Vec::new();
    for (study, s) in doc.studies.iter().enumerate() {
        let pid = study as u64;
        for span in &s.trace.spans {
            events.push(TraceEvent {
                name: format!("{}:{}", s.label, span.name),
                cat: "span".to_owned(),
                ph: "X".to_owned(),
                ts: span.start_us,
                dur: span.duration_us.max(1),
                pid,
                tid: 0,
            });
        }
        for lane_set in &s.trace.lanes {
            for iv in &lane_set.intervals {
                events.push(TraceEvent {
                    name: format!("{}#{}", lane_set.stage, iv.chunk),
                    cat: "lane".to_owned(),
                    ph: "X".to_owned(),
                    ts: iv.begin_us,
                    dur: iv.duration_us().max(1),
                    pid,
                    tid: u64::from(iv.worker) + 1,
                });
            }
        }
    }
    serde_json::to_string(&TraceEventDocument {
        traceEvents: events,
    })
    .unwrap_or_else(|_| r#"{"traceEvents":[]}"#.to_owned())
}

fn is_number(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::UInt(_) | Value::Float(_))
}

/// Validates Chrome trace-event JSON shape: a top-level `traceEvents` array
/// whose every element is a complete duration event (`ph: "X"` with numeric
/// `ts`/`dur`/`pid`/`tid` and string `name`/`cat`). Returns the event count.
///
/// # Errors
///
/// Returns a description of the first violation: unparseable JSON, a
/// missing/NaN field, or a non-`"X"` phase.
pub fn validate(json: &str) -> Result<usize, String> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let Some(events) = value.get("traceEvents") else {
        return Err("missing top-level traceEvents field".to_owned());
    };
    let Value::Array(events) = events else {
        return Err("traceEvents is not an array".to_owned());
    };
    for (i, event) in events.iter().enumerate() {
        if !matches!(event, Value::Object(_)) {
            return Err(format!("event {i} is not an object"));
        }
        match event.get("ph") {
            Some(Value::Str(ph)) if ph == "X" => {}
            other => return Err(format!("event {i}: ph must be \"X\", got {other:?}")),
        }
        for field in ["ts", "dur", "pid", "tid"] {
            match event.get(field) {
                Some(v) if is_number(v) => {}
                other => {
                    return Err(format!(
                        "event {i}: {field} must be a number, got {other:?}"
                    ))
                }
            }
        }
        for field in ["name", "cat"] {
            if !matches!(event.get(field), Some(Value::Str(_))) {
                return Err(format!("event {i}: missing string field {field}"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{StudyTrace, TraceDocument};
    use crate::{Collector, LaneBuf};

    fn sample_document() -> TraceDocument {
        let c = Collector::enabled();
        {
            let _root = c.span("pipeline");
            let _som = c.span("pipeline.som");
            let mut buf = LaneBuf::with_capacity(2);
            buf.record(0, 0, 5, 9);
            buf.record(1, 1, 5, 11);
            buf.end_run();
            c.attach_lanes("som.bmu_batch", 2, &buf);
        }
        TraceDocument::new(
            2,
            vec![StudyTrace {
                label: "study_a".into(),
                trace: c.report().expect("enabled"),
            }],
        )
    }

    #[test]
    fn export_validates_and_counts_lanes() {
        let doc = sample_document();
        let json = to_chrome_trace(&doc);
        let n = validate(&json).expect("well-formed trace");
        // 2 spans on the coordinator lane + 2 lane intervals.
        assert_eq!(n, 4);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("som.bmu_batch#0"));
        assert!(json.contains("study_a:pipeline"));
    }

    #[test]
    fn worker_lanes_get_distinct_tids() {
        let json = to_chrome_trace(&sample_document());
        let value: Value = serde_json::from_str(&json).expect("valid json");
        let Some(Value::Array(events)) = value.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        let mut tids: Vec<i64> = events
            .iter()
            .filter_map(|e| match e.get("tid") {
                Some(Value::Int(t)) => Some(*t),
                Some(Value::UInt(t)) => i64::try_from(*t).ok(),
                _ => None,
            })
            .collect();
        tids.sort_unstable();
        tids.dedup();
        // Coordinator lane 0 plus worker lanes 1 and 2.
        assert_eq!(tids, vec![0, 1, 2]);
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        assert!(validate("not json").is_err());
        assert!(validate(r#"{"other": []}"#).is_err());
        assert!(validate(r#"{"traceEvents": [{}]}"#).is_err());
        assert!(validate(
            r#"{"traceEvents": [{"ph": "B", "ts": 0, "dur": 0, "pid": 0, "tid": 0}]}"#
        )
        .is_err());
        assert!(validate(
            r#"{"traceEvents": [{"name": "n", "cat": "c", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}"#
        )
        .is_err());
        assert_eq!(validate(r#"{"traceEvents": []}"#), Ok(0));
    }
}
