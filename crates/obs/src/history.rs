//! Append-only run-history store and the statistical regression gate.
//!
//! The paper's argument is longitudinal — single-number scores matter
//! because you compare them across machines and across time — so the
//! observability layer keeps its own longitude: every `repro` run appends
//! one compact [`RunRecord`] to `OBS_history.jsonl` (one JSON object per
//! line, never rewritten), and health judgments are *statistical over the
//! record history* instead of a flat percentage against one hand-committed
//! baseline.
//!
//! * [`BenchMeta`] — provenance stamped into every record AND into the
//!   `BENCH_*.json` artifacts: git revision, host fingerprint, cargo
//!   profile, capture time. A baseline from another machine now says so.
//! * [`append_record`] / [`load_history`] — the JSONL store, read through
//!   the shared truncation-tolerant scanner ([`crate::jsonl`]). Records
//!   carry [`HISTORY_SCHEMA_VERSION`]; newer-versioned lines are a load
//!   error (upgrade the reader), malformed lines in the middle of the
//!   store are an error with the line number, and a torn *trailing* line —
//!   a process killed mid-append — is skipped with a warning instead of
//!   refusing the whole history.
//! * [`trend_table`] — per-(kind, key) median, MAD, latest delta, and a
//!   sparkline of the recent series.
//! * [`gate`] — the regression verdict: for each gated metric the latest
//!   value must not exceed `median + max(k·MAD, rel_floor·median,
//!   abs_floor)` over a rolling window of prior same-host, same-profile
//!   runs. MAD adapts the threshold to each stage's real jitter; the
//!   relative floor keeps micro-stages from tripping on scheduler noise;
//!   the absolute floor keeps sub-millisecond stages honest. With too few
//!   comparable records the gate passes vacuously but says so.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Version stamp of the `OBS_history.jsonl` record schema.
///
/// * v1 — kind, workers, [`BenchMeta`], convergence flag, peak RSS, flat
///   `samples` list of (key, value, unit).
pub const HISTORY_SCHEMA_VERSION: u32 = 1;

/// Provenance stamped into run records and `BENCH_*.json` artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Version of this meta block itself (bumped independently of the
    /// artifacts that embed it).
    pub schema_version: u32,
    /// Git revision (12-hex prefix) read from `.git` without spawning a
    /// subprocess; `unknown` outside a work tree.
    pub git_rev: String,
    /// Host fingerprint: `hostname/os-arch/Ncpu`.
    pub host: String,
    /// `release` or `debug`, from `cfg!(debug_assertions)`.
    pub cargo_profile: String,
    /// Capture time, milliseconds since the Unix epoch (`0` if the clock
    /// is unavailable).
    pub captured_ms: u64,
}

/// Version stamp of the [`BenchMeta`] block.
pub const BENCH_META_VERSION: u32 = 1;

impl BenchMeta {
    /// Captures provenance for the current process.
    #[must_use]
    pub fn capture() -> BenchMeta {
        BenchMeta {
            schema_version: BENCH_META_VERSION,
            git_rev: git_rev(),
            host: host_fingerprint(),
            cargo_profile: if cfg!(debug_assertions) {
                "debug".to_owned()
            } else {
                "release".to_owned()
            },
            captured_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        }
    }
}

/// Resolves the symbolic or detached HEAD of the repository at `dir`.
fn git_rev_from(dir: &Path) -> Option<String> {
    let head = std::fs::read_to_string(dir.join(".git/HEAD")).ok()?;
    let head = head.trim();
    let refname = match head.strip_prefix("ref: ") {
        None => return Some(head.to_owned()), // detached HEAD: the hash itself
        Some(r) => r.trim(),
    };
    if let Ok(hash) = std::fs::read_to_string(dir.join(".git").join(refname)) {
        return Some(hash.trim().to_owned());
    }
    // The loose ref may have been packed.
    let packed = std::fs::read_to_string(dir.join(".git/packed-refs")).ok()?;
    for line in packed.lines() {
        if line.starts_with(['#', '^']) {
            continue;
        }
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == refname {
                return Some(hash.to_owned());
            }
        }
    }
    None
}

/// The current git revision (12-hex prefix), found by walking up from the
/// working directory; `unknown` when no repository is found.
#[must_use]
pub fn git_rev() -> String {
    let mut dir: Option<PathBuf> = std::env::current_dir().ok();
    while let Some(d) = dir {
        if d.join(".git").exists() {
            return git_rev_from(&d)
                .map_or_else(|| "unknown".to_owned(), |h| h.chars().take(12).collect());
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    "unknown".to_owned()
}

/// `hostname/os-arch/Ncpu` — enough identity to keep one machine's history
/// from gating another's.
#[must_use]
pub fn host_fingerprint() -> String {
    let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown-host".to_owned());
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    format!(
        "{hostname}/{}-{}/{}cpu",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus
    )
}

/// One scalar measurement inside a [`RunRecord`].
///
/// `unit` is one of `us`, `ms`, `bytes`, `kb` (all gated, higher is worse)
/// or `ratio`, `count` (trend-only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Stable metric key, e.g. `pipeline.som` or `pipeline.som/peak_bytes`.
    pub key: String,
    /// The measurement.
    pub value: f64,
    /// Unit tag; decides gating and formatting.
    pub unit: String,
}

/// One run's compact record in the history store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Record schema version ([`HISTORY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing subcommand: `trace`, `profile`, `bench_pipeline`,
    /// `bench_scale`.
    pub kind: String,
    /// Worker count the run used.
    pub workers: usize,
    /// Provenance.
    pub meta: BenchMeta,
    /// Convergence verdict over all studies, when the run has one.
    #[serde(default)]
    pub converged: Option<bool>,
    /// Process peak RSS in kB, when memory telemetry captured one.
    #[serde(default)]
    pub peak_rss_kb: Option<u64>,
    /// The run's measurements.
    pub samples: Vec<Sample>,
}

impl RunRecord {
    /// Convenience constructor stamping schema version and provenance.
    #[must_use]
    pub fn new(kind: &str, workers: usize) -> RunRecord {
        RunRecord {
            schema_version: HISTORY_SCHEMA_VERSION,
            kind: kind.to_owned(),
            workers,
            meta: BenchMeta::capture(),
            converged: None,
            peak_rss_kb: None,
            samples: Vec::new(),
        }
    }

    /// Appends one measurement.
    pub fn push(&mut self, key: impl Into<String>, value: f64, unit: &str) {
        self.samples.push(Sample {
            key: key.into(),
            value,
            unit: unit.to_owned(),
        });
    }

    /// The value of the sample with this key, if present.
    #[must_use]
    pub fn sample(&self, key: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.key == key).map(|s| s.value)
    }
}

/// Appends one record as a single compact JSON line, creating the store on
/// first use. Append-only by construction: the file is opened with
/// `append`, never truncated.
pub fn append_record(path: &Path, record: &RunRecord) -> Result<(), String> {
    let line = serde_json::to_string(record).map_err(|e| format!("encode record: {e}"))?;
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("append {}: {e}", path.display()))
}

/// A loaded history: every fully-written record, plus the warning to
/// surface when the store ended in a torn trailing record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryLoad {
    /// Records in append order.
    pub records: Vec<RunRecord>,
    /// One-line warning when a torn trailing record was skipped.
    pub warning: Option<String>,
}

/// Loads every record in append order. A missing store is an empty
/// history; a malformed line in the *middle* of the store or a
/// newer-versioned record is an error naming the line number; a torn
/// *trailing* line (interrupted append) is skipped, with the warning
/// carried in [`HistoryLoad::warning`] for the caller to print.
pub fn load_history(path: &Path) -> Result<HistoryLoad, String> {
    let scan = crate::jsonl::scan::<RunRecord>(path)?;
    for record in &scan.records {
        if record.schema_version > HISTORY_SCHEMA_VERSION {
            return Err(format!(
                "{}: history schema v{} is newer than supported v{}",
                path.display(),
                record.schema_version,
                HISTORY_SCHEMA_VERSION
            ));
        }
    }
    Ok(HistoryLoad {
        records: scan.records,
        warning: scan.torn.map(|t| t.warning(path)),
    })
}

/// Median of a series; `0.0` for an empty one.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation around the median (raw, not normalized).
#[must_use]
pub fn mad(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let med = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    median(&deviations)
}

/// Unicode sparkline of a series (empty string for an empty series).
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|v| {
            if span <= 0.0 {
                BARS[3]
            } else {
                let t = ((v - min) / span * 7.0).round();
                BARS[(t as usize).min(7)]
            }
        })
        .collect()
}

/// Units where a larger latest value is a regression.
fn gated_unit(unit: &str) -> bool {
    matches!(unit, "us" | "ms" | "bytes" | "kb")
}

/// Unit-specific absolute floor below which deltas are never judged — keeps
/// sub-threshold stages from failing on quantization noise.
fn abs_floor(unit: &str) -> f64 {
    match unit {
        "us" => 500.0,
        "ms" => 0.5,
        "bytes" => (1u64 << 20) as f64,
        "kb" => 1024.0,
        _ => f64::INFINITY,
    }
}

fn fmt_value(value: f64, unit: &str) -> String {
    match unit {
        "us" if value >= 1000.0 => format!("{:.2}ms", value / 1000.0),
        "us" => format!("{value:.0}us"),
        "ms" => format!("{value:.2}ms"),
        "bytes" if value >= (1u64 << 20) as f64 => {
            format!("{:.1}MiB", value / (1u64 << 20) as f64)
        }
        "bytes" => format!("{value:.0}B"),
        "kb" => format!("{value:.0}kB"),
        "ratio" => format!("{value:.3}"),
        _ => format!("{value:.2}"),
    }
}

/// The kinds present in `records`, in first-appearance order.
fn kinds_in(records: &[RunRecord]) -> Vec<String> {
    let mut kinds: Vec<String> = Vec::new();
    for r in records {
        if !kinds.contains(&r.kind) {
            kinds.push(r.kind.clone());
        }
    }
    kinds
}

/// Renders the trend table: per (kind, key), count, median, MAD, latest
/// value with its delta vs the median, and a sparkline of the recent
/// series. All records of a kind contribute, regardless of host — the
/// table is for eyes; the [`gate`] is the one that insists on comparable
/// provenance.
#[must_use]
pub fn trend_table(records: &[RunRecord]) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("history: empty (run `repro trace` or a bench to append records)\n");
        return out;
    }
    let _ = writeln!(out, "history: {} records", records.len());
    for kind in kinds_in(records) {
        let of_kind: Vec<&RunRecord> = records.iter().filter(|r| r.kind == kind).collect();
        let latest = of_kind[of_kind.len() - 1];
        let _ = writeln!(
            out,
            "\n{kind} ({} runs, latest {} @ {} [{}])",
            of_kind.len(),
            latest.meta.git_rev,
            latest.meta.host,
            latest.meta.cargo_profile
        );
        for sample in &latest.samples {
            let series: Vec<f64> = of_kind
                .iter()
                .filter_map(|r| r.sample(&sample.key))
                .collect();
            let med = median(&series);
            let spread = mad(&series);
            let delta_pct = if med.abs() > f64::EPSILON {
                (sample.value - med) / med * 100.0
            } else {
                0.0
            };
            let tail: Vec<f64> = series.iter().rev().take(16).rev().copied().collect();
            let _ = writeln!(
                out,
                "  {:<40} n={:<3} med={:>10} mad={:>10} last={:>10} {:>+7.1}%  {}",
                sample.key,
                series.len(),
                fmt_value(med, &sample.unit),
                fmt_value(spread, &sample.unit),
                fmt_value(sample.value, &sample.unit),
                delta_pct,
                sparkline(&tail)
            );
        }
    }
    out
}

/// Tuning for the statistical regression gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Rolling window: at most this many prior comparable runs per metric.
    pub window: usize,
    /// Minimum comparable prior runs before a metric is judged at all.
    pub min_window: usize,
    /// MAD multiplier.
    pub k: f64,
    /// Relative floor: deltas below this fraction of the median never fail
    /// (the old flat rule, demoted from verdict to floor).
    pub rel_floor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            window: 8,
            min_window: 4,
            k: 5.0,
            rel_floor: 0.25,
        }
    }
}

/// One gate run's verdict and its per-metric report lines.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Whether every judged metric passed.
    pub passed: bool,
    /// Human-readable per-metric lines (`ok` / `FAIL` / `skip`).
    pub lines: Vec<String>,
}

impl GateOutcome {
    /// Renders the verdict block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        let _ = writeln!(out, "gate: {}", if self.passed { "PASS" } else { "FAIL" });
        out
    }
}

/// Judges the latest record of every kind against the rolling window of
/// prior records with the same host fingerprint and cargo profile.
///
/// Per gated metric the threshold is `median + max(k·MAD,
/// rel_floor·median, abs_floor(unit))`: a planted 2× slowdown clears all
/// three floors and fails; run-to-run jitter sits inside the MAD band or
/// under a floor and passes. A latest record that reports
/// `converged: false` fails outright.
#[must_use]
pub fn gate(records: &[RunRecord], cfg: &GateConfig) -> GateOutcome {
    let mut lines = Vec::new();
    let mut passed = true;
    if records.is_empty() {
        lines.push("gate: empty history — nothing to judge (vacuous pass)".to_owned());
        return GateOutcome { passed, lines };
    }
    for kind in kinds_in(records) {
        let of_kind: Vec<&RunRecord> = records.iter().filter(|r| r.kind == kind).collect();
        let latest = of_kind[of_kind.len() - 1];
        let prior: Vec<&RunRecord> = of_kind[..of_kind.len() - 1]
            .iter()
            .filter(|r| {
                r.meta.host == latest.meta.host && r.meta.cargo_profile == latest.meta.cargo_profile
            })
            .copied()
            .collect();
        if latest.converged == Some(false) {
            passed = false;
            lines.push(format!("{kind}: FAIL latest run did not converge"));
        }
        for sample in &latest.samples {
            if !gated_unit(&sample.unit) {
                continue;
            }
            let series: Vec<f64> = prior.iter().filter_map(|r| r.sample(&sample.key)).collect();
            let window: Vec<f64> = series
                .iter()
                .rev()
                .take(cfg.window)
                .rev()
                .copied()
                .collect();
            if window.len() < cfg.min_window {
                lines.push(format!(
                    "{kind}/{}: skip — {} comparable prior runs (< {}), vacuous pass",
                    sample.key,
                    window.len(),
                    cfg.min_window
                ));
                continue;
            }
            let med = median(&window);
            let spread = mad(&window);
            let margin = (cfg.k * spread)
                .max(cfg.rel_floor * med)
                .max(abs_floor(&sample.unit));
            let threshold = med + margin;
            if sample.value > threshold {
                passed = false;
                lines.push(format!(
                    "{kind}/{}: FAIL last={} > threshold={} (med={} mad={} n={})",
                    sample.key,
                    fmt_value(sample.value, &sample.unit),
                    fmt_value(threshold, &sample.unit),
                    fmt_value(med, &sample.unit),
                    fmt_value(spread, &sample.unit),
                    window.len()
                ));
            } else {
                lines.push(format!(
                    "{kind}/{}: ok last={} <= threshold={} (med={} n={})",
                    sample.key,
                    fmt_value(sample.value, &sample.unit),
                    fmt_value(threshold, &sample.unit),
                    fmt_value(med, &sample.unit),
                    window.len()
                ));
            }
        }
    }
    GateOutcome { passed, lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(kind: &str, wall_us: f64, tag: u64) -> RunRecord {
        let mut r = RunRecord::new(kind, 4);
        r.meta.git_rev = format!("rev{tag:08x}");
        r.meta.host = "testhost/linux-x86_64/8cpu".to_owned();
        r.meta.cargo_profile = "release".to_owned();
        r.converged = Some(true);
        r.push("pipeline.som", wall_us, "us");
        r.push("pipeline.som/peak_bytes", 4.0e6 + tag as f64, "bytes");
        r.push("pipeline.som/parallel_efficiency", 0.9, "ratio");
        r
    }

    /// Deterministic multiplicative jitter in `[1-amp, 1+amp]`.
    fn jitter(state: &mut u64, amp: f64) -> f64 {
        *state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let unit = (*state >> 33) as f64 / (1u64 << 31) as f64; // [0,1)
        1.0 + (unit * 2.0 - 1.0) * amp
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = record_with("trace", 120_000.0, 7);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert!(!json.contains('\n'), "records must be single-line JSON");
    }

    #[test]
    fn meta_capture_is_well_formed() {
        let meta = BenchMeta::capture();
        assert_eq!(meta.schema_version, BENCH_META_VERSION);
        assert!(!meta.git_rev.is_empty());
        assert!(meta.host.contains("cpu"));
        assert!(matches!(meta.cargo_profile.as_str(), "debug" | "release"));
    }

    #[test]
    fn store_appends_and_loads_in_order() {
        let dir = std::env::temp_dir().join(format!("obs_history_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_history(&path).unwrap(), HistoryLoad::default());
        for i in 0..3 {
            append_record(&path, &record_with("trace", 1000.0 * (i + 1) as f64, i)).unwrap();
        }
        let loaded = load_history(&path).unwrap();
        assert_eq!(loaded.records.len(), 3);
        assert!(loaded.warning.is_none());
        assert_eq!(loaded.records[2].sample("pipeline.som"), Some(3000.0));
        // A malformed line in the middle errors with its line number.
        std::fs::write(&path, "not json\n{\"also\":\"not a record\"}\n").unwrap();
        let err = load_history(&path).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn byte_chopped_trailing_record_is_skipped_with_warning() {
        let dir = std::env::temp_dir().join(format!("obs_history_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        for i in 0..2 {
            let _ = std::fs::remove_file(&path);
            append_record(&path, &record_with("trace", 1000.0, 1)).unwrap();
            append_record(&path, &record_with("trace", 2000.0, 2)).unwrap();
            let full = std::fs::read(&path).unwrap();
            // Chop the second record mid-line at two different depths, as a
            // crash mid-append would.
            let keep = full.iter().filter(|&&b| b == b'\n').count();
            assert_eq!(keep, 2);
            let first_line_end = full.iter().position(|&b| b == b'\n').unwrap();
            let cut = first_line_end + 1 + (full.len() - first_line_end) / (i + 2);
            std::fs::write(&path, &full[..cut]).unwrap();
            let loaded = load_history(&path).unwrap();
            assert_eq!(loaded.records.len(), 1, "cut at {cut}");
            assert_eq!(loaded.records[0].sample("pipeline.som"), Some(1000.0));
            let warning = loaded.warning.expect("torn tail must warn");
            assert!(warning.contains(":2:"), "{warning}");
            assert!(warning.contains("torn trailing record"), "{warning}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let mut r = record_with("trace", 1.0, 0);
        r.schema_version = HISTORY_SCHEMA_VERSION + 1;
        let dir = std::env::temp_dir().join(format!("obs_history_v_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        append_record(&path, &r).unwrap();
        let err = load_history(&path).unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(mad(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
    }

    #[test]
    fn sparkline_scales_and_handles_flat_series() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn gate_fails_on_planted_doubling() {
        let mut state = 0x5EED_u64;
        let mut records: Vec<RunRecord> = (0..8)
            .map(|i| record_with("trace", 100_000.0 * jitter(&mut state, 0.05), i))
            .collect();
        // Plant a 2× slowdown in the latest run's SOM stage.
        records.push(record_with("trace", 200_000.0, 99));
        let outcome = gate(&records, &GateConfig::default());
        assert!(!outcome.passed, "{}", outcome.render());
        assert!(
            outcome
                .lines
                .iter()
                .any(|l| l.contains("pipeline.som") && l.contains("FAIL")),
            "{}",
            outcome.render()
        );
    }

    #[test]
    fn gate_passes_on_stable_jitter() {
        let mut state = 0xCAFE_u64;
        let records: Vec<RunRecord> = (0..9)
            .map(|i| record_with("trace", 100_000.0 * jitter(&mut state, 0.10), i))
            .collect();
        let outcome = gate(&records, &GateConfig::default());
        assert!(outcome.passed, "{}", outcome.render());
    }

    #[test]
    fn gate_is_vacuous_without_comparable_history() {
        // Same kind, but every prior run came from a different host.
        let mut other = record_with("trace", 100_000.0, 0);
        other.meta.host = "elsewhere/linux-x86_64/64cpu".to_owned();
        let records = vec![other.clone(), other, record_with("trace", 500_000.0, 1)];
        let outcome = gate(&records, &GateConfig::default());
        assert!(outcome.passed, "{}", outcome.render());
        assert!(
            outcome.lines.iter().any(|l| l.contains("skip")),
            "{}",
            outcome.render()
        );
    }

    #[test]
    fn gate_fails_non_converged_latest() {
        let mut records: Vec<RunRecord> =
            (0..5).map(|i| record_with("trace", 100_000.0, i)).collect();
        records.last_mut().unwrap().converged = Some(false);
        let outcome = gate(&records, &GateConfig::default());
        assert!(!outcome.passed);
    }

    #[test]
    fn trend_table_names_every_key() {
        let records: Vec<RunRecord> = (0..5).map(|i| record_with("trace", 100_000.0, i)).collect();
        let table = trend_table(&records);
        assert!(table.contains("pipeline.som"));
        assert!(table.contains("pipeline.som/peak_bytes"));
        assert!(table.contains("parallel_efficiency"));
        assert!(table.contains("5 runs"));
        assert!(trend_table(&[]).contains("empty"));
    }
}
