//! Memory telemetry: a tracking allocator hook, span-scoped attribution,
//! and process peak-RSS sampling.
//!
//! A `#[global_allocator]` can only be installed by the final binary (or
//! test binary), never by a library, so this module splits the telemetry in
//! two: [`TrackingAlloc`] is the allocator *wrapper* a binary opts into
//! (`repro` does, as do the allocation-proof test binaries), and everything
//! else is the bookkeeping the wrapper feeds. When no binary installed the
//! wrapper, every probe below reads zeros and the collector degrades to
//! RSS-only telemetry — enabling memory telemetry is never an error, it
//! just reports less.
//!
//! # Attribution model
//!
//! * **Thread scopes** ([`ThreadScope`], opened per span by the collector):
//!   allocation count, allocated bytes, and the live-byte high-water mark of
//!   the *coordinating* thread, nested like the spans themselves. Steady-
//!   state worker loops are allocation-free by construction (proven by the
//!   `zero_alloc` tests), so coordinator attribution captures the hot-path
//!   truth.
//! * **Worker tallies** (fed by `hiermeans_linalg::parallel` via
//!   [`worker_tally_begin`]/[`worker_tally_end`]): allocations made on
//!   scoped worker threads are folded into process-wide monotone counters,
//!   and a scope charges itself the delta observed while it was open. Peak
//!   bytes stay per-thread — a cross-thread high-water mark cannot be
//!   reconstructed from per-thread counters without a shared live counter
//!   on the hot path, which would put contention where PR 4 removed it.
//! * **Global windows** ([`global_window`]): process-wide live/peak
//!   accounting for allocation-ceiling tests (one window at a time; this is
//!   the API the former hand-rolled counting allocators consolidated onto).
//!
//! # Cost
//!
//! With the wrapper installed but no telemetry active, every allocation
//! pays one thread-local flag read and one relaxed atomic load. Without the
//! wrapper, cost is exactly zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Number of live memory-enabled collectors; worker/TLS accounting is only
/// active while nonzero (or inside an explicit [`ThreadScope`]).
static TRACKING: AtomicUsize = AtomicUsize::new(0);

/// Whether a [`global_window`] is currently open.
static GLOBAL_WINDOW: AtomicBool = AtomicBool::new(false);
/// Live bytes observed inside the current global window (may go negative
/// when pre-window buffers are freed inside the window).
static GLOBAL_LIVE: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`GLOBAL_LIVE`] within the current window.
static GLOBAL_PEAK: AtomicI64 = AtomicI64::new(0);

/// Monotone process-wide tallies of allocations made on parallel worker
/// threads while tracking was active (see `hiermeans_linalg::parallel`).
static WORKER_ALLOCS: AtomicU64 = AtomicU64::new(0);
static WORKER_BYTES: AtomicU64 = AtomicU64::new(0);

/// Largest `VmRSS` the sampler thread has observed, in kB.
static SAMPLED_RSS_MAX_KB: AtomicU64 = AtomicU64::new(0);

struct ThreadCells {
    allocs: Cell<u64>,
    bytes: Cell<u64>,
    live: Cell<i64>,
    peak: Cell<i64>,
    scopes: Cell<u32>,
    exempt: Cell<bool>,
}

std::thread_local! {
    static STATS: ThreadCells = const {
        ThreadCells {
            allocs: Cell::new(0),
            bytes: Cell::new(0),
            live: Cell::new(0),
            peak: Cell::new(0),
            scopes: Cell::new(0),
            exempt: Cell::new(false),
        }
    };
}

/// Memory statistics attributed to one span (or one [`thread_probe`] /
/// [`ThreadScope`] window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Heap allocations charged to the scope: the coordinating thread's
    /// plus the worker-tally delta observed while the scope was open.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// High-water mark of the coordinating thread's live bytes over the
    /// scope, relative to the live bytes at scope open.
    pub peak_bytes: u64,
}

#[inline]
fn on_alloc(size: usize) {
    // try_with: thread-local storage may be unavailable during thread
    // teardown; those allocations belong to no scope anyway.
    let _ = STATS.try_with(|s| {
        if s.exempt.get() {
            return;
        }
        if s.scopes.get() > 0 || TRACKING.load(Ordering::Relaxed) > 0 {
            s.allocs.set(s.allocs.get() + 1);
            s.bytes.set(s.bytes.get() + size as u64);
            let live = s.live.get() + size as i64;
            s.live.set(live);
            if live > s.peak.get() {
                s.peak.set(live);
            }
        }
    });
    if GLOBAL_WINDOW.load(Ordering::Relaxed) {
        let live = GLOBAL_LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        GLOBAL_PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

#[inline]
fn on_dealloc(size: usize) {
    let _ = STATS.try_with(|s| {
        if s.exempt.get() {
            return;
        }
        if s.scopes.get() > 0 || TRACKING.load(Ordering::Relaxed) > 0 {
            s.live.set(s.live.get() - size as i64);
        }
    });
    if GLOBAL_WINDOW.load(Ordering::Relaxed) {
        GLOBAL_LIVE.fetch_sub(size as i64, Ordering::Relaxed);
    }
}

/// The tracking allocator wrapper. Binaries opt into memory telemetry with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: hiermeans_obs::memhook::TrackingAlloc =
///     hiermeans_obs::memhook::TrackingAlloc;
/// ```
///
/// It delegates every operation to [`System`] and only adds the counter
/// updates described at module level.
#[derive(Debug)]
pub struct TrackingAlloc;

// SAFETY: every operation delegates to `System`; the added bookkeeping
// performs no allocation (thread-local Cell and atomic updates only).
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // One allocation event for the new block, with the old block
            // released — live moves by the delta, bytes by the new size.
            on_alloc(new_size);
            on_dealloc(layout.size());
        }
        new_ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Whether a [`TrackingAlloc`] is installed in this process, detected once
/// by probing a boxed allocation inside a thread scope.
#[must_use]
pub fn hook_installed() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| {
        let scope = ThreadScope::open();
        drop(std::hint::black_box(Box::new(0xA5A5_5A5A_u64)));
        scope.close().allocs > 0
    })
}

/// Registers one memory-enabled collector: returns whether the allocator
/// hook is installed (span-level attribution available) and keeps worker
/// tallies active until the matching [`tracking_release`].
#[must_use]
pub fn tracking_activate() -> bool {
    TRACKING.fetch_add(1, Ordering::SeqCst);
    hook_installed()
}

/// Releases one [`tracking_activate`] registration.
pub fn tracking_release() {
    TRACKING.fetch_sub(1, Ordering::SeqCst);
}

/// One nested measurement window over the current thread's allocations (plus
/// the process-wide worker tallies). Opened by the collector per span; close
/// returns the attributed [`MemStats`].
#[derive(Debug)]
#[must_use = "an unclosed scope attributes nothing"]
pub struct ThreadScope {
    allocs0: u64,
    bytes0: u64,
    live0: i64,
    saved_peak: i64,
    worker_allocs0: u64,
    worker_bytes0: u64,
    closed: bool,
    /// Scopes save/restore *this thread's* peak bookkeeping; moving one to
    /// another thread would corrupt both threads' attribution.
    _not_send: PhantomData<*const ()>,
}

impl ThreadScope {
    /// Opens a scope: snapshots the thread's counters and resets the
    /// thread-peak baseline to the current live bytes.
    pub fn open() -> ThreadScope {
        STATS.with(|s| {
            s.scopes.set(s.scopes.get() + 1);
            let live0 = s.live.get();
            let saved_peak = s.peak.get();
            s.peak.set(live0);
            ThreadScope {
                allocs0: s.allocs.get(),
                bytes0: s.bytes.get(),
                live0,
                saved_peak,
                worker_allocs0: WORKER_ALLOCS.load(Ordering::Relaxed),
                worker_bytes0: WORKER_BYTES.load(Ordering::Relaxed),
                closed: false,
                _not_send: PhantomData,
            }
        })
    }

    /// Closes the scope and returns the stats attributed to it.
    pub fn close(mut self) -> MemStats {
        self.closed = true;
        STATS.with(|s| {
            let stats = MemStats {
                allocs: (s.allocs.get() - self.allocs0)
                    + (WORKER_ALLOCS.load(Ordering::Relaxed) - self.worker_allocs0),
                bytes: (s.bytes.get() - self.bytes0)
                    + (WORKER_BYTES.load(Ordering::Relaxed) - self.worker_bytes0),
                peak_bytes: u64::try_from(s.peak.get() - self.live0).unwrap_or(0),
            };
            self.restore(s);
            stats
        })
    }

    fn restore(&self, s: &ThreadCells) {
        // The enclosing scope's high-water mark is the max of what it had
        // seen before this scope reset the baseline and what this scope saw.
        if self.saved_peak > s.peak.get() {
            s.peak.set(self.saved_peak);
        }
        s.scopes.set(s.scopes.get().saturating_sub(1));
    }
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        if !self.closed {
            let _ = STATS.try_with(|s| self.restore(s));
        }
    }
}

/// Runs `f` inside a fresh [`ThreadScope`] and returns its result with the
/// attributed stats — the shared API of the allocation-proof tests.
pub fn thread_probe<T>(f: impl FnOnce() -> T) -> (T, MemStats) {
    let scope = ThreadScope::open();
    let out = f();
    (out, scope.close())
}

/// Runs `f` inside a process-wide live/peak measurement window and returns
/// its result with the peak of *new* bytes held at once, across all
/// threads. Frees of pre-window buffers can push the internal live count
/// negative; the peak of new memory is still an upper bound on what `f`
/// held at once. One window at a time per process — this is a test harness
/// API (allocation-ceiling proofs), not run-time telemetry.
pub fn global_window<T>(f: impl FnOnce() -> T) -> (T, i64) {
    GLOBAL_LIVE.store(0, Ordering::SeqCst);
    GLOBAL_PEAK.store(0, Ordering::SeqCst);
    GLOBAL_WINDOW.store(true, Ordering::SeqCst);
    let out = f();
    GLOBAL_WINDOW.store(false, Ordering::SeqCst);
    (out, GLOBAL_PEAK.load(Ordering::SeqCst))
}

/// Snapshot for one parallel worker's tally window, or `None` when no
/// memory-enabled collector is live (the common case: two relaxed loads).
#[must_use]
pub fn worker_tally_begin() -> Option<(u64, u64)> {
    if TRACKING.load(Ordering::Relaxed) == 0 {
        return None;
    }
    STATS.try_with(|s| (s.allocs.get(), s.bytes.get())).ok()
}

/// Folds the worker thread's allocations since `begin` into the process
/// tallies, where the coordinating thread's open scope picks them up.
pub fn worker_tally_end(begin: Option<(u64, u64)>) {
    if let Some((allocs0, bytes0)) = begin {
        let _ = STATS.try_with(|s| {
            WORKER_ALLOCS.fetch_add(s.allocs.get() - allocs0, Ordering::Relaxed);
            WORKER_BYTES.fetch_add(s.bytes.get() - bytes0, Ordering::Relaxed);
        });
    }
}

/// Parses one `kB` field of `/proc/self/status` (e.g. `VmRSS`, `VmHWM`).
/// `None` off Linux or when the field is absent.
fn read_status_kb(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.strip_prefix(':')?;
            return rest.split_whitespace().next().and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Refcounted handle to the background RSS sampler thread. The thread runs
/// only while at least one memory-enabled collector is alive; the last
/// release signals the condvar and *joins* the thread, so shutdown is
/// deterministic instead of racing process exit. A later acquire restarts
/// it — [`SAMPLED_RSS_MAX_KB`] is monotone across restarts, so the peak
/// gauge never regresses.
struct SamplerState {
    users: usize,
    handle: Option<SamplerHandle>,
}

struct SamplerHandle {
    stop: std::sync::Arc<(Mutex<bool>, Condvar)>,
    join: std::thread::JoinHandle<()>,
}

static SAMPLER: Mutex<SamplerState> = Mutex::new(SamplerState {
    users: 0,
    handle: None,
});

fn sampler_lock() -> std::sync::MutexGuard<'static, SamplerState> {
    SAMPLER
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registers one user of the background RSS sampler, starting the thread
/// on the 0→1 transition: it polls `VmRSS` every 50 ms and folds the
/// maximum into a process-wide gauge. Its own allocations are exempt from
/// every measurement window. Pair with [`rss_sampler_release`].
pub fn rss_sampler_acquire() {
    let mut sampler = sampler_lock();
    sampler.users += 1;
    if sampler.handle.is_some() {
        return;
    }
    let stop = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
    let thread_stop = std::sync::Arc::clone(&stop);
    // Spawn failure just means sampling is absent; VmHWM still covers
    // the process peak at report time.
    let spawned = std::thread::Builder::new()
        .name("obs-rss-sampler".to_owned())
        .spawn(move || {
            STATS.with(|s| s.exempt.set(true));
            let (stopped, signal) = &*thread_stop;
            let mut guard = stopped
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while !*guard {
                if let Some(kb) = read_status_kb("VmRSS") {
                    SAMPLED_RSS_MAX_KB.fetch_max(kb, Ordering::Relaxed);
                }
                guard = signal
                    .wait_timeout(guard, std::time::Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        });
    if let Ok(join) = spawned {
        sampler.handle = Some(SamplerHandle { stop, join });
    }
}

/// Releases one sampler user; the 1→0 transition stops the thread and
/// joins it before returning.
pub fn rss_sampler_release() {
    let handle = {
        let mut sampler = sampler_lock();
        sampler.users = sampler.users.saturating_sub(1);
        if sampler.users == 0 {
            sampler.handle.take()
        } else {
            None
        }
    };
    if let Some(SamplerHandle { stop, join }) = handle {
        let (stopped, signal) = &*stop;
        *stopped
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        signal.notify_all();
        let _ = join.join();
    }
}

/// Whether the sampler thread is currently running (test hook).
#[must_use]
pub fn rss_sampler_running() -> bool {
    sampler_lock().handle.is_some()
}

/// The process's peak resident set size in kB: the kernel's `VmHWM`
/// high-water mark combined with the sampler's observed maximum. `None`
/// when neither source is available (non-Linux without a running sampler).
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    let sampled = SAMPLED_RSS_MAX_KB.load(Ordering::Relaxed);
    match read_status_kb("VmHWM") {
        Some(hwm) => Some(hwm.max(sampled)),
        None if sampled > 0 => Some(sampled),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs unit-test binary does NOT install the tracking allocator, so
    // these tests pin the degraded behavior; the hooked behavior lives in
    // `tests/memhook.rs`, which does install it.

    #[test]
    fn without_hook_scopes_report_zero() {
        let (value, stats) = thread_probe(|| {
            let v: Vec<u64> = (0..1024).collect();
            v.len()
        });
        assert_eq!(value, 1024);
        assert_eq!(stats, MemStats::default());
        assert!(!hook_installed());
    }

    #[test]
    fn scopes_nest_and_unwind() {
        let outer = ThreadScope::open();
        let inner = ThreadScope::open();
        let _ = inner.close();
        let dropped = ThreadScope::open();
        drop(dropped); // unclosed scope must unwind its bookkeeping
        let _ = outer.close();
        STATS.with(|s| assert_eq!(s.scopes.get(), 0));
    }

    #[test]
    fn worker_tally_inactive_without_collectors() {
        assert_eq!(worker_tally_begin(), None);
        worker_tally_end(None);
    }

    #[test]
    fn tracking_activation_round_trips() {
        let hooked = tracking_activate();
        assert!(!hooked, "unit-test binary has no tracking allocator");
        assert!(worker_tally_begin().is_some());
        tracking_release();
        assert_eq!(worker_tally_begin(), None);
    }

    #[test]
    fn global_window_runs_the_closure() {
        let (out, peak) = global_window(|| 7);
        assert_eq!(out, 7);
        assert_eq!(peak, 0, "no hook installed, nothing counted");
    }

    #[test]
    fn status_parsing_is_total() {
        // On Linux both fields exist; elsewhere the probe returns None.
        // Either way the call must not panic.
        let _ = read_status_kb("VmRSS");
        let _ = peak_rss_kb();
    }
}
