//! Shared truncation-tolerant JSONL reading.
//!
//! Three append-only stores in this workspace share the one-JSON-object-
//! per-line format: the run-history store (`OBS_history.jsonl`), the fleet
//! result store (`STORE_fleet.jsonl`, `hiermeans-store`), and its
//! quarantine sidecar. They also share a failure mode: a process killed
//! mid-append leaves a *torn trailing record* — a final line that is a
//! prefix of a JSON object. A torn tail is expected damage, not
//! corruption: every record that was fully written is still intact, so a
//! reader must recover the prefix instead of refusing the whole file.
//!
//! This module is the one reader implementing that policy:
//!
//! * [`read_lines`] — raw line scanning. A missing file is an empty store;
//!   an unreadable one is an error.
//! * [`scan`] — typed scanning. Every line must parse as `T` **except**
//!   the last, which — when it fails — is reported as a [`TornTail`]
//!   instead of an error. A malformed line in the *middle* of the file is
//!   real corruption (appends never write there) and stays a hard error
//!   naming the line; `repro fsck` is the tool that digs further.

use std::path::Path;

use serde::Deserialize;

/// A torn trailing record recovered (skipped) by a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// 1-based line number of the torn fragment.
    pub line: usize,
    /// Byte length of the fragment.
    pub bytes: usize,
    /// Why the fragment failed to parse.
    pub error: String,
}

impl TornTail {
    /// The standard one-line warning a tolerant reader should surface.
    #[must_use]
    pub fn warning(&self, path: &Path) -> String {
        format!(
            "{}:{}: skipped torn trailing record ({} bytes): {}",
            path.display(),
            self.line,
            self.bytes,
            self.error
        )
    }
}

/// A typed scan: every fully-written record, plus the torn tail if the
/// file ends in one.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonlScan<T> {
    /// Records in append order.
    pub records: Vec<T>,
    /// The torn trailing fragment, when the last line failed to parse.
    pub torn: Option<TornTail>,
}

/// Reads a JSONL file as `(1-based line number, line)` pairs, skipping
/// blank lines. A missing file is an empty store.
///
/// # Errors
///
/// Returns an error naming the path for any I/O failure other than
/// `NotFound`.
pub fn read_lines(path: &Path) -> Result<Vec<(usize, String)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    Ok(text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| (i + 1, line.to_owned()))
        .collect())
}

/// Scans a JSONL file into typed records, tolerating a torn trailing line.
///
/// The last non-blank line failing to parse is reported as
/// [`JsonlScan::torn`], not an error — every caller decides how loudly to
/// warn. Any *earlier* line failing to parse is a hard error naming the
/// file and line number.
///
/// # Errors
///
/// I/O failures (other than a missing file) and mid-file malformed lines.
pub fn scan<T: Deserialize>(path: &Path) -> Result<JsonlScan<T>, String> {
    let lines = read_lines(path)?;
    let mut records = Vec::with_capacity(lines.len());
    let mut torn = None;
    let last = lines.len();
    for (seq, (line_no, line)) in lines.iter().enumerate() {
        match serde_json::from_str::<T>(line) {
            Ok(record) => records.push(record),
            Err(e) if seq + 1 == last => {
                torn = Some(TornTail {
                    line: *line_no,
                    bytes: line.len(),
                    error: e.to_string(),
                });
            }
            Err(e) => {
                return Err(format!("{}:{}: {e}", path.display(), line_no));
            }
        }
    }
    Ok(JsonlScan { records, torn })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        id: u64,
        name: String,
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("obs_jsonl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_store(path: &Path, n: u64, torn_suffix: &str) {
        let mut text = String::new();
        for id in 0..n {
            text.push_str(
                &serde_json::to_string(&Rec {
                    id,
                    name: format!("rec{id}"),
                })
                .unwrap(),
            );
            text.push('\n');
        }
        text.push_str(torn_suffix);
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("missing.jsonl");
        let _ = std::fs::remove_file(&path);
        let s: JsonlScan<Rec> = scan(&path).unwrap();
        assert!(s.records.is_empty() && s.torn.is_none());
    }

    #[test]
    fn clean_store_round_trips() {
        let path = tmp("clean.jsonl");
        write_store(&path, 3, "");
        let s: JsonlScan<Rec> = scan(&path).unwrap();
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[2].id, 2);
        assert!(s.torn.is_none());
    }

    #[test]
    fn torn_tail_is_tolerated_and_reported() {
        let path = tmp("torn.jsonl");
        // A record chopped mid-object, as a killed O_APPEND writer leaves it.
        write_store(&path, 2, "{\"id\":2,\"na");
        let s: JsonlScan<Rec> = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        let torn = s.torn.expect("torn tail must be reported");
        assert_eq!(torn.line, 3);
        assert_eq!(torn.bytes, "{\"id\":2,\"na".len());
        assert!(
            torn.warning(&path).contains(":3:"),
            "{}",
            torn.warning(&path)
        );
    }

    #[test]
    fn every_chop_point_of_the_last_record_is_tolerated() {
        let path = tmp("chop.jsonl");
        let full = serde_json::to_string(&Rec {
            id: 9,
            name: "tail".into(),
        })
        .unwrap();
        for cut in 1..full.len() {
            write_store(&path, 2, &full[..cut]);
            let s: JsonlScan<Rec> = scan(&path).unwrap();
            assert_eq!(s.records.len(), 2, "cut at {cut}");
            assert!(s.torn.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let path = tmp("midfile.jsonl");
        let good = serde_json::to_string(&Rec {
            id: 1,
            name: "ok".into(),
        })
        .unwrap();
        std::fs::write(&path, format!("not json at all\n{good}\n")).unwrap();
        let err = scan::<Rec>(&path).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped_not_torn() {
        let path = tmp("blank.jsonl");
        write_store(&path, 2, "\n  \n");
        let s: JsonlScan<Rec> = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(s.torn.is_none());
    }
}
