//! The single source of stage names: every span and lane stage recorded by
//! the workspace uses these constants.
//!
//! `perf.rs` (BENCH_pipeline.json) reads span durations by name, so a span
//! rename at an instrumentation site used to silently desynchronize the
//! perf gate from the trace. Centralizing the names makes drift a compile
//! error, and [`ALL`] lets tests assert that each name still appears in a
//! real paper-study trace.

/// The whole-study analysis facade.
pub const ANALYSIS: &str = "analysis";
/// Execution-substrate simulation (speedup table).
pub const ANALYSIS_SIMULATE: &str = "analysis.simulate";
/// Characteristic-vector assembly for the chosen characterization.
pub const ANALYSIS_CHARACTERIZE: &str = "analysis.characterize";
/// Silhouette-based cluster-count recommendation.
pub const ANALYSIS_RECOMMEND_K: &str = "analysis.recommend_k";
/// Workload counter/method-profile characterization.
pub const WORKLOAD_CHARACTERIZE: &str = "workload.characterize";
/// The SOM → clustering pipeline.
pub const PIPELINE: &str = "pipeline";
/// SOM training within the pipeline.
pub const PIPELINE_SOM: &str = "pipeline.som";
/// Projection of the workloads onto the trained map.
pub const PIPELINE_PROJECT: &str = "pipeline.project";
/// Agglomerative clustering of the map positions.
pub const PIPELINE_CLUSTER: &str = "pipeline.cluster";
/// Dendrogram cut sweep over candidate cluster counts.
pub const PIPELINE_SWEEP: &str = "pipeline.sweep";
/// The convergence-gated, self-healing pipeline wrapper.
pub const PIPELINE_RESILIENT: &str = "pipeline.resilient";
/// Raw-space fallback clustering after retry exhaustion.
pub const PIPELINE_DEGRADED_RAW_SPACE: &str = "pipeline.degraded_raw_space";
/// One SOM training run.
pub const SOM_TRAIN: &str = "som.train";
/// SOM codebook initialization.
pub const SOM_INIT: &str = "som.init";
/// Complete-linkage agglomeration (pairwise + merge loop).
pub const CLUSTER_AGGLOMERATE: &str = "cluster.agglomerate";
/// Pairwise distance matrix over the clustered points.
pub const CLUSTER_PAIRWISE: &str = "cluster.pairwise";
/// The merge loop consuming the distance matrix.
pub const CLUSTER_MERGE_LOOP: &str = "cluster.merge_loop";
/// Hierarchical-mean score sweep over `k`.
pub const SCORE_SWEEP: &str = "score.sweep";

/// Lane stage: per-epoch online SOM training (one interval per epoch).
pub const LANE_SOM_ONLINE_EPOCHS: &str = "som.online_epochs";
/// Lane stage: batch-mode best-matching-unit search chunks.
pub const LANE_SOM_BMU_BATCH: &str = "som.bmu_batch";
/// Lane stage: batch-mode numerator/denominator accumulation chunks.
pub const LANE_SOM_BATCH_ACCUMULATE: &str = "som.batch_accumulate";

/// Every span name guaranteed to appear in a full paper-study trace
/// (`SuiteAnalysis::paper_with` under an enabled collector). Names recorded
/// only on special paths — the resilient wrapper, degraded fallback, the
/// cut sweep helper — are deliberately absent.
pub const ALL: [&str; 15] = [
    ANALYSIS,
    ANALYSIS_SIMULATE,
    ANALYSIS_CHARACTERIZE,
    ANALYSIS_RECOMMEND_K,
    WORKLOAD_CHARACTERIZE,
    PIPELINE,
    PIPELINE_SOM,
    PIPELINE_PROJECT,
    PIPELINE_CLUSTER,
    SOM_TRAIN,
    SOM_INIT,
    CLUSTER_AGGLOMERATE,
    CLUSTER_PAIRWISE,
    CLUSTER_MERGE_LOOP,
    SCORE_SWEEP,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names = ALL.to_vec();
        names.extend([
            PIPELINE_SWEEP,
            PIPELINE_RESILIENT,
            PIPELINE_DEGRADED_RAW_SPACE,
            LANE_SOM_ONLINE_EPOCHS,
            LANE_SOM_BMU_BATCH,
            LANE_SOM_BATCH_ACCUMULATE,
        ]);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
