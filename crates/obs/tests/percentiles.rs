//! Percentile edge cases and ordering invariants for the fixed-bucket
//! histograms, driven through the public collector API.

use hiermeans_obs::{Collector, HistogramExport, HistogramId};
use proptest::prelude::*;

/// Records `values` into one histogram and returns its export.
fn exported(id: HistogramId, values: &[f64]) -> HistogramExport {
    let c = Collector::enabled();
    for &v in values {
        c.record(id, v);
    }
    c.report()
        .expect("enabled collector")
        .histogram(id.name())
        .expect("known histogram")
        .clone()
}

#[test]
fn empty_histogram_percentiles_are_zero() {
    let e = exported(HistogramId::MergeDistance, &[]);
    assert_eq!((e.total, e.p50, e.p95, e.p99), (0, 0.0, 0.0, 0.0));
}

#[test]
fn single_sample_percentiles_collapse_to_it() {
    let e = exported(HistogramId::MergeDistance, &[3.7]);
    assert_eq!(e.total, 1);
    assert_eq!(e.p50, 3.7);
    assert_eq!(e.p95, 3.7);
    assert_eq!(e.p99, 3.7);
}

#[test]
fn all_mass_in_the_overflow_bucket_stays_in_observed_range() {
    // Every value exceeds the last MergeDistance boundary (16.0), so all
    // mass lands in the unbounded overflow bucket — the one with no upper
    // boundary to interpolate against.
    let values = [20.0, 25.0, 40.0, 100.0];
    let e = exported(HistogramId::MergeDistance, &values);
    assert_eq!(*e.counts.last().unwrap(), values.len() as u64);
    assert_eq!(e.counts.iter().sum::<u64>(), values.len() as u64);
    for p in [e.p50, e.p95, e.p99] {
        assert!((20.0..=100.0).contains(&p), "percentile {p} left the range");
    }
    assert!(e.p50 <= e.p95 && e.p95 <= e.p99);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p50 <= p95 <= p99, and all inside [min, max], for any sample set —
    /// including duplicates, sub-first-bucket values, and overflow values.
    #[test]
    fn percentiles_are_ordered_and_bounded(
        values in proptest::collection::vec(0.0f64..64.0, 1..80)
    ) {
        let e = exported(HistogramId::MergeDistance, &values);
        prop_assert!(e.p50 <= e.p95, "p50={} p95={}", e.p50, e.p95);
        prop_assert!(e.p95 <= e.p99, "p95={} p99={}", e.p95, e.p99);
        prop_assert!(e.min <= e.p50, "min={} p50={}", e.min, e.p50);
        prop_assert!(e.p99 <= e.max, "p99={} max={}", e.p99, e.max);
    }
}
