//! Lifecycle of the background RSS sampler thread: it must start with the
//! first memory-enabled collector, survive while any such collector is
//! alive, and be *joined* (not abandoned) when the last one drops.
//!
//! This lives in its own test binary with a single `#[test]` so no other
//! concurrently running test can hold a memory collector and perturb the
//! refcount the assertions below depend on.

use hiermeans_obs::{memhook, Collector, ObsConfig};

fn memory_collector() -> Collector {
    Collector::enabled_with(ObsConfig {
        memory: true,
        ..ObsConfig::default()
    })
}

#[test]
fn sampler_follows_collector_lifetimes_and_joins_on_last_drop() {
    assert!(
        !memhook::rss_sampler_running(),
        "no memory collector exists yet"
    );

    // 0 -> 1 starts the thread; a second user shares it.
    let first = memory_collector();
    assert!(memhook::rss_sampler_running());
    let second = memory_collector();
    assert!(memhook::rss_sampler_running());

    // Dropping one of two keeps it alive; dropping the last joins it.
    drop(first);
    assert!(memhook::rss_sampler_running());
    drop(second);
    assert!(
        !memhook::rss_sampler_running(),
        "last collector drop must stop and join the sampler"
    );

    // The sampler restarts for a later collector and the peak gauge stays
    // monotone across the restart.
    let third = memory_collector();
    assert!(memhook::rss_sampler_running());
    let peak = memhook::peak_rss_kb();
    assert!(peak.is_some(), "Linux: VmHWM readable");
    drop(third);
    assert!(!memhook::rss_sampler_running());
    assert!(memhook::peak_rss_kb() >= peak);
}
