//! Hooked-allocator behavior of `hiermeans_obs::memhook`.
//!
//! This test binary installs [`TrackingAlloc`], so span attribution is
//! live here — unlike the crate's unit tests, which deliberately run
//! without the hook and pin the degraded behavior.

use hiermeans_obs::memhook::{self, global_window, hook_installed, thread_probe, TrackingAlloc};
use hiermeans_obs::{Collector, Counter, ObsConfig};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn memory_on() -> ObsConfig {
    ObsConfig {
        memory: true,
        ..ObsConfig::default()
    }
}

#[test]
fn hook_is_detected() {
    assert!(hook_installed());
}

#[test]
fn thread_probe_attributes_allocations() {
    const MIB: u64 = 1 << 20;
    let ((), stats) = thread_probe(|| {
        let buf = std::hint::black_box(vec![0u8; MIB as usize]);
        drop(buf);
    });
    assert!(stats.allocs >= 1, "{stats:?}");
    assert!(stats.bytes >= MIB, "{stats:?}");
    // The buffer was dropped inside the probe, but the high-water mark
    // remembers it.
    assert!(stats.peak_bytes >= MIB, "{stats:?}");
}

#[test]
fn nested_scopes_roll_up_to_the_parent() {
    const KIB: usize = 1 << 10;
    let ((), outer) = thread_probe(|| {
        let held = std::hint::black_box(vec![0u8; 512 * KIB]);
        let ((), inner) = thread_probe(|| {
            drop(std::hint::black_box(vec![0u8; 256 * KIB]));
        });
        assert!(inner.peak_bytes >= 256 * KIB as u64, "{inner:?}");
        assert!(
            inner.peak_bytes < 512 * KIB as u64,
            "inner scope must not be charged the outer buffer: {inner:?}"
        );
        drop(held);
    });
    // The outer scope held 512 KiB while the inner 256 KiB was live.
    assert!(outer.peak_bytes >= 768 * KIB as u64, "{outer:?}");
    assert!(outer.allocs >= 2, "{outer:?}");
}

#[test]
fn collector_spans_carry_memory_stats() {
    let c = Collector::enabled_with(memory_on());
    {
        let _root = c.span("pipeline");
        let _stage = c.span("pipeline.som");
        drop(std::hint::black_box(vec![0u8; 2 << 20]));
        c.add(Counter::BmuSearches, 3);
    }
    let report = c.report().unwrap();
    let memory = report.memory.as_ref().expect("memory block");
    let stage = memory
        .stages
        .iter()
        .find(|s| s.stage == "pipeline.som")
        .expect("pipeline.som attribution");
    assert!(stage.peak_bytes >= 2 << 20, "{stage:?}");
    assert!(stage.allocs >= 1);
    // The root span rolls the child's allocations up.
    let root = memory
        .stages
        .iter()
        .find(|s| s.stage == "pipeline")
        .expect("pipeline attribution");
    assert!(root.bytes >= stage.bytes - 1024, "{root:?} vs {stage:?}");
    assert!(memory.peak_rss_kb > 0, "RSS must be readable on Linux CI");
}

#[test]
fn memory_toggle_preserves_outputs_and_fingerprints() {
    let run = |config: ObsConfig| {
        let c = Collector::enabled_with(config);
        {
            let _root = c.span("pipeline");
            let _stage = c.span("pipeline.cluster");
            c.add(Counter::LinkageMerges, 12);
            c.record_merge(0.5);
            c.record_merge(1.5);
        }
        c.report().unwrap()
    };
    let off = run(ObsConfig::default());
    let on = run(memory_on());
    assert_eq!(off.fingerprint(), on.fingerprint());
    assert_eq!(off.merge_distances, on.merge_distances);
    assert_eq!(off.counters, on.counters);
    assert!(off.memory.is_none());
    assert!(on.memory.is_some());
}

#[test]
fn worker_tallies_fold_into_open_scopes() {
    let c = Collector::enabled_with(memory_on()); // keeps TRACKING > 0
    {
        let _span = c.span("stage");
        let handle = std::thread::spawn(|| {
            let tally = memhook::worker_tally_begin();
            assert!(tally.is_some(), "tracking is active");
            drop(std::hint::black_box(vec![0u8; 64 << 10]));
            memhook::worker_tally_end(tally);
        });
        handle.join().unwrap();
    }
    let report = c.report().unwrap();
    let stage = &report.memory.as_ref().unwrap().stages[0];
    assert!(
        stage.bytes >= 64 << 10,
        "worker allocation must charge the open span: {stage:?}"
    );
}

#[test]
fn global_window_sees_all_threads() {
    let ((), peak) = global_window(|| {
        let handle = std::thread::spawn(|| {
            std::hint::black_box(vec![0u8; 1 << 20]);
        });
        handle.join().unwrap();
    });
    assert!(peak >= 1 << 20, "peak {peak}");
}

#[test]
fn peak_rss_is_available() {
    memhook::rss_sampler_acquire();
    let kb = memhook::peak_rss_kb().expect("Linux: VmHWM readable");
    assert!(kb > 1024, "a Rust test process exceeds 1 MiB RSS: {kb}");
    memhook::rss_sampler_release();
}
