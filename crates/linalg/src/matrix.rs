use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the exchange type between the characterization pipeline (rows
/// are workloads, columns are characteristic-vector elements), the SOM, and
/// PCA. It deliberately supports only the operations the workspace needs.
///
/// # Example
///
/// ```
/// use hiermeans_linalg::Matrix;
///
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// let t = m.transpose();
/// assert_eq!(t[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows` x `cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows` x `cols` matrix where every entry is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n` x `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `rows` is empty or the first row is
    /// empty, and [`LinalgError::ShapeMismatch`] if the rows have differing
    /// lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { what: "rows" });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::Empty { what: "columns" });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    left: (1, cols),
                    right: (i, row.len()),
                    op: "from_rows",
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Returns the shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// **Deprecated pattern**: this allocates a fresh `Vec` on every call,
    /// which turns column sweeps (PCA, scalers) into allocation churn. New
    /// code should use [`Matrix::col_iter`] to stream a column, or
    /// [`Matrix::col_into`] to fill a reusable buffer.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Copies column `c` into `out` without allocating.
    ///
    /// This is the allocation-free replacement for [`Matrix::col`] at call
    /// sites that sweep columns with a reusable scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols()` or `out.len() != nrows()`.
    pub fn col_into(&self, c: usize, out: &mut [f64]) {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        assert_eq!(out.len(), self.rows, "column buffer length");
        for (o, row) in out.iter_mut().zip(self.rows_iter()) {
            *o = row[c];
        }
    }

    /// Iterates over the entries of column `c` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols()`.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        self.rows_iter().map(move |row| row[c])
    }

    /// Iterates over the rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the underlying row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Overwrites every entry with `value` (used to reset reusable scratch
    /// accumulators without reallocating).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Writes the transpose into `out` without allocating.
    ///
    /// This is the reuse-a-scratch-buffer form of [`Matrix::transpose`] for
    /// per-epoch codebook preparation, where the transposed matrix is
    /// rebuilt every epoch into the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if `out.shape() != (self.ncols(), self.nrows())`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose buffer shape"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// Runs the cache-blocked kernel from [`crate::kernels`]; results are
    /// bitwise identical to the naive triple loop for finite inputs (the
    /// per-cell summation order is preserved), just faster.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.ncols() != rhs.nrows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        crate::kernels::matmul(self, rhs)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        Ok(self
            .rows_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Multiplies every entry by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// The sample covariance matrix of the columns (rows are observations).
    ///
    /// Uses the unbiased `n - 1` denominator.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if there are fewer than two
    /// rows.
    pub fn covariance(&self) -> Result<Matrix, LinalgError> {
        if self.rows < 2 {
            return Err(LinalgError::InvalidParameter {
                name: "rows",
                reason: "covariance requires at least two observations",
            });
        }
        let n = self.rows as f64;
        let means: Vec<f64> = (0..self.cols)
            .map(|c| self.col_iter(c).sum::<f64>() / n)
            .collect();
        // Center once, then run the blocked syrk kernel. The kernel adds the
        // per-row contributions for each (i, j) cell in ascending row order —
        // the same association as the scalar accumulation this replaces — so
        // the result is bitwise identical.
        let mut centered = self.clone();
        for row in centered.data.chunks_exact_mut(self.cols) {
            for (v, m) in row.iter_mut().zip(&means) {
                *v -= m;
            }
        }
        let mut cov = crate::kernels::syrk_rows(&centered);
        for v in &mut cov.data {
            *v /= n - 1.0;
        }
        Ok(cov)
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `row.len() != ncols()`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), LinalgError> {
        if row.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (1, row.len()),
                op: "push_row",
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Returns a new matrix containing only the selected columns, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::OutOfBounds`] if any index is out of range.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix, LinalgError> {
        for &c in indices {
            if c >= self.cols {
                return Err(LinalgError::OutOfBounds {
                    index: c,
                    len: self.cols,
                    what: "columns",
                });
            }
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (k, &c) in indices.iter().enumerate() {
                out[(r, k)] = self[(r, c)];
            }
        }
        Ok(out)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op,
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.rows_iter() {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:>10.4}")).collect();
            writeln!(f, "[{}]", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            LinalgError::Empty { .. }
        ));
        assert!(matches!(
            Matrix::from_rows(&[vec![]]).unwrap_err(),
            LinalgError::Empty { .. }
        ));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn indexing_row_major() {
        let m = sample();
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn col_into_and_iter_match_col() {
        let m = sample();
        let mut buf = vec![0.0; 2];
        m.col_into(1, &mut buf);
        assert_eq!(buf, m.col(1));
        let streamed: Vec<f64> = m.col_iter(1).collect();
        assert_eq!(streamed, m.col(1));
    }

    #[test]
    #[should_panic(expected = "column buffer length")]
    fn col_into_rejects_wrong_len() {
        sample().col_into(0, &mut [0.0; 3]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let m = sample();
        let mut out = Matrix::zeros(3, 2);
        m.transpose_into(&mut out);
        assert_eq!(out, m.transpose());
    }

    #[test]
    #[should_panic(expected = "transpose buffer shape")]
    fn transpose_into_rejects_wrong_shape() {
        let mut out = Matrix::zeros(2, 2);
        sample().transpose_into(&mut out);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = a.transpose();
        let p = a.matmul(&b).unwrap();
        // [1 2 3; 4 5 6] * [1 4; 2 5; 3 6] = [14 32; 32 77]
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 0)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let m = sample();
        assert!(m.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        let v = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(v, vec![6.0, 15.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let m = sample();
        let s = m.add(&m).unwrap().sub(&m).unwrap();
        assert_eq!(s, m);
    }

    #[test]
    fn scaled_and_map() {
        let m = sample().scaled(2.0);
        assert_eq!(m[(1, 2)], 12.0);
        let n = m.map(|v| v / 2.0);
        assert_eq!(n, sample());
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        // Column 1 = 2 * column 0, so cov = [[var, 2var], [2var, 4var]].
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = m.covariance().unwrap();
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_needs_two_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(m.covariance().is_err());
    }

    #[test]
    fn push_row_grows() {
        let mut m = sample();
        m.push_row(&[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn select_columns_reorders() {
        let m = sample();
        let s = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert!(m.select_columns(&[5]).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = sample();
        assert!(m.is_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", sample()).is_empty());
    }
}
