//! Feature scalers with a fit/transform interface.
//!
//! The paper standardizes each counter "prior to the cluster analysis, i.e.,
//! subtract the mean and divide by standard deviation" (Section IV-C). That is
//! [`Standardizer`]. [`MinMaxScaler`] and [`UnitNormScaler`] are provided for
//! ablation experiments.

use serde::{Deserialize, Serialize};

use crate::{stats, LinalgError, Matrix};

/// Z-score standardization: per-column, subtract the mean, divide by the
/// standard deviation.
///
/// Columns with zero variance are centered but left unscaled (divided by 1),
/// matching the usual convention; the characterization pipeline filters
/// invariant columns out *before* standardizing, as the paper does.
///
/// # Example
///
/// ```
/// use hiermeans_linalg::{Matrix, scale::Standardizer};
///
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let data = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]])?;
/// let scaler = Standardizer::fit(&data)?;
/// let z = scaler.transform(&data)?;
/// assert!(z[(0, 0)] < 0.0 && z[(1, 0)] > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns per-column means and standard deviations from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `data` has fewer than two
    /// rows and [`LinalgError::NonFinite`] if `data` contains NaN/infinity.
    pub fn fit(data: &Matrix) -> Result<Self, LinalgError> {
        if data.nrows() < 2 {
            return Err(LinalgError::InvalidParameter {
                name: "data",
                reason: "standardization requires at least two rows",
            });
        }
        if !data.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "standardizer input",
            });
        }
        let mut means = Vec::with_capacity(data.ncols());
        let mut stds = Vec::with_capacity(data.ncols());
        // One column buffer reused for every sweep instead of a fresh Vec
        // per column (the old `Matrix::col` pattern).
        let mut col = vec![0.0; data.nrows()];
        for c in 0..data.ncols() {
            data.col_into(c, &mut col);
            means.push(stats::mean(&col)?);
            let sd = stats::std_dev(&col)?;
            stds.push(if sd > 0.0 { sd } else { 1.0 });
        }
        Ok(Standardizer { means, stds })
    }

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs from
    /// the fitted data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, LinalgError> {
        if data.ncols() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, self.means.len()),
                right: data.shape(),
                op: "standardize",
            });
        }
        let mut out = data.clone();
        for r in 0..out.nrows() {
            let row = out.row_mut(r);
            for (v, (m, s)) in row.iter_mut().zip(self.means.iter().zip(&self.stds)) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    /// Convenience: fit on `data` and transform it in one step.
    ///
    /// # Errors
    ///
    /// Same as [`Standardizer::fit`].
    pub fn fit_transform(data: &Matrix) -> Result<Matrix, LinalgError> {
        Self::fit(data)?.transform(data)
    }

    /// Inverts the transform.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs.
    pub fn inverse_transform(&self, data: &Matrix) -> Result<Matrix, LinalgError> {
        if data.ncols() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, self.means.len()),
                right: data.shape(),
                op: "inverse_standardize",
            });
        }
        let mut out = data.clone();
        for r in 0..out.nrows() {
            let row = out.row_mut(r);
            for (v, (m, s)) in row.iter_mut().zip(self.means.iter().zip(&self.stds)) {
                *v = *v * s + m;
            }
        }
        Ok(out)
    }

    /// The learned per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The learned per-column standard deviations (1.0 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Min-max scaling of each column to `[0, 1]`.
///
/// Constant columns map to 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-column minima and ranges from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty matrix and
    /// [`LinalgError::NonFinite`] for NaN/infinite input.
    pub fn fit(data: &Matrix) -> Result<Self, LinalgError> {
        if data.is_empty() {
            return Err(LinalgError::Empty {
                what: "min-max scaler input",
            });
        }
        if !data.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "min-max scaler input",
            });
        }
        let mut mins = Vec::with_capacity(data.ncols());
        let mut ranges = Vec::with_capacity(data.ncols());
        let mut col = vec![0.0; data.nrows()];
        for c in 0..data.ncols() {
            data.col_into(c, &mut col);
            let (lo, hi) = stats::min_max(&col)?;
            mins.push(lo);
            ranges.push(if hi > lo { hi - lo } else { 1.0 });
        }
        Ok(MinMaxScaler { mins, ranges })
    }

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, LinalgError> {
        if data.ncols() != self.mins.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, self.mins.len()),
                right: data.shape(),
                op: "min-max scale",
            });
        }
        let mut out = data.clone();
        for r in 0..out.nrows() {
            let row = out.row_mut(r);
            for (v, (lo, range)) in row.iter_mut().zip(self.mins.iter().zip(&self.ranges)) {
                *v = (*v - lo) / range;
            }
        }
        Ok(out)
    }

    /// Convenience: fit and transform in one step.
    ///
    /// # Errors
    ///
    /// Same as [`MinMaxScaler::fit`].
    pub fn fit_transform(data: &Matrix) -> Result<Matrix, LinalgError> {
        Self::fit(data)?.transform(data)
    }
}

/// Scales each *row* to unit L2 norm (directional features only).
///
/// Zero rows are left unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UnitNormScaler;

impl UnitNormScaler {
    /// Normalizes every row of `data` to unit L2 norm.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = data.clone();
        for r in 0..out.nrows() {
            let norm = crate::vector::norm(out.row(r));
            if norm > 0.0 {
                for v in out.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let z = Standardizer::fit_transform(&sample()).unwrap();
        for c in 0..2 {
            let col = z.col(c);
            assert!(stats::mean(&col).unwrap().abs() < 1e-12);
            assert!((stats::std_dev(&col).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardize_constant_column_centered() {
        let z = Standardizer::fit_transform(&sample()).unwrap();
        // Column 2 is constant 5.0 -> centered to 0, divided by 1.
        assert!(z.col(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn standardize_roundtrip() {
        let data = sample();
        let s = Standardizer::fit(&data).unwrap();
        let back = s.inverse_transform(&s.transform(&data).unwrap()).unwrap();
        for (a, b) in back.as_slice().iter().zip(data.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn standardize_rejects_single_row() {
        let one = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(Standardizer::fit(&one).is_err());
    }

    #[test]
    fn standardize_rejects_nan() {
        let mut m = sample();
        m[(0, 0)] = f64::NAN;
        assert!(Standardizer::fit(&m).is_err());
    }

    #[test]
    fn standardize_shape_mismatch_on_transform() {
        let s = Standardizer::fit(&sample()).unwrap();
        let other = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(s.transform(&other).is_err());
        assert!(s.inverse_transform(&other).is_err());
    }

    #[test]
    fn minmax_unit_interval() {
        let m = MinMaxScaler::fit_transform(&sample()).unwrap();
        for c in 0..2 {
            let (lo, hi) = stats::min_max(&m.col(c)).unwrap();
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 1.0);
        }
        // Constant column -> all zeros.
        assert!(m.col(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn unit_norm_rows() {
        let n = UnitNormScaler.transform(&sample());
        for r in 0..n.nrows() {
            assert!((crate::vector::norm(n.row(r)) - 1.0).abs() < 1e-12);
        }
        // Zero row untouched.
        let z = Matrix::zeros(1, 3);
        assert_eq!(UnitNormScaler.transform(&z), z);
    }

    #[test]
    fn standardizer_accessors() {
        let s = Standardizer::fit(&sample()).unwrap();
        assert_eq!(s.means().len(), 3);
        assert_eq!(s.stds().len(), 3);
        assert_eq!(s.means()[0], 2.0);
        assert_eq!(s.stds()[2], 1.0);
    }
}
