//! Streaming row access over a characteristic-vector matrix.
//!
//! [`RowSource`] abstracts "a matrix whose rows can be loaded strip by
//! strip" so the batch-SOM trainer can consume data it never holds resident
//! in full: an in-memory [`Matrix`] (the trivial backend below), a binary
//! file streamed through a fixed buffer, or a deterministic generator that
//! re-synthesizes rows on every pass. Backends that derive rows from
//! sequential state (files, RNG streams) rely on the trainer's access
//! pattern contract: within one pass, strips are requested in ascending,
//! contiguous order, and a request starting at row 0 marks the start of a
//! fresh pass (a rewind).

use std::fmt;

use crate::Matrix;

/// Error from a [`RowSource`] backend.
///
/// Backend failures (an I/O error in a file source, a corrupt header) are
/// carried as rendered detail text: [`crate::LinalgError`] is `Eq`/`Clone`
/// by design, so source errors that are neither (e.g. `std::io::Error`) are
/// flattened at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSourceError {
    /// Human-readable description of what failed in the backend.
    pub detail: String,
}

impl RowSourceError {
    /// Builds an error from any displayable backend failure.
    pub fn new(detail: impl fmt::Display) -> Self {
        RowSourceError {
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for RowSourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row source: {}", self.detail)
    }
}

impl std::error::Error for RowSourceError {}

/// A matrix whose rows are loaded strip by strip instead of held resident.
///
/// # Access pattern contract
///
/// Callers (the streaming SOM trainer) request strips in ascending,
/// contiguous order within a pass — `load_rows(0, c0, ..)`,
/// `load_rows(c0, c1, ..)`, … — and signal the start of a fresh pass by
/// requesting `start == 0` again. Sequential backends (buffered files,
/// deterministic generators) may rely on this to avoid random access;
/// random-access backends (an in-memory [`Matrix`]) may ignore it.
pub trait RowSource {
    /// Total number of rows.
    fn nrows(&self) -> usize;

    /// Row dimensionality.
    fn ncols(&self) -> usize;

    /// Loads rows `start..start + count` into `out` in row-major order.
    ///
    /// `out` must hold exactly `count * ncols()` values.
    ///
    /// # Errors
    ///
    /// Returns [`RowSourceError`] on backend failure (I/O, corruption) or a
    /// request outside `0..nrows()`.
    fn load_rows(
        &mut self,
        start: usize,
        count: usize,
        out: &mut [f64],
    ) -> Result<(), RowSourceError>;
}

impl RowSource for &Matrix {
    fn nrows(&self) -> usize {
        Matrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        Matrix::ncols(self)
    }

    fn load_rows(
        &mut self,
        start: usize,
        count: usize,
        out: &mut [f64],
    ) -> Result<(), RowSourceError> {
        let (rows, cols) = self.shape();
        if start + count > rows {
            return Err(RowSourceError::new(format!(
                "rows {start}..{} out of bounds ({rows})",
                start + count
            )));
        }
        if out.len() != count * cols {
            return Err(RowSourceError::new(format!(
                "strip buffer holds {} values, need {}",
                out.len(),
                count * cols
            )));
        }
        out.copy_from_slice(&self.as_slice()[start * cols..(start + count) * cols]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_source_streams_strips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let mut src = &m;
        assert_eq!(RowSource::nrows(&src), 3);
        assert_eq!(RowSource::ncols(&src), 2);
        let mut buf = vec![0.0; 4];
        src.load_rows(1, 2, &mut buf).unwrap();
        assert_eq!(buf, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn matrix_source_rejects_bad_requests() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let mut src = &m;
        let mut buf = vec![0.0; 2];
        assert!(src.load_rows(1, 1, &mut buf).is_err());
        let mut short = vec![0.0; 1];
        assert!(src.load_rows(0, 1, &mut short).is_err());
    }
}
