//! Deterministic chunked map-reduce over index ranges.
//!
//! Every parallel hot path in the workspace — pairwise distance matrices,
//! the SOM's best-matching-unit search and batch-epoch accumulation, and the
//! per-`k` dendrogram score sweep — routes through this module instead of
//! hand-rolling its own thread pool. The design enforces four invariants:
//!
//! 1. **Bit-for-bit determinism.** Chunk boundaries are a pure function of
//!    the input length and the caller's chunk size — never of the worker
//!    count — and per-chunk results are reduced in ascending chunk order.
//!    The same input therefore produces the same bits on a 1-core and a
//!    96-core machine, and the serial fallback executes the identical
//!    chunked computation.
//! 2. **Error propagation.** Workers return `Result`s; the first failure in
//!    *chunk order* (the same one serial execution would surface) is
//!    returned to the caller as [`ParallelError::Task`].
//! 3. **Panic isolation.** A panicking chunk does not abort the process or
//!    poison its siblings: the panic is caught per chunk and surfaces as
//!    [`ParallelError::WorkerPanic`] with the chunk index and the panic
//!    payload, ranked against task errors by the same chunk-order rule. The
//!    serial fallback catches panics identically, so behavior does not
//!    depend on whether the input crossed the parallelism threshold.
//! 4. **No oversubscription cliffs.** The worker count follows
//!    [`std::thread::available_parallelism`] with no hard cap, and inputs
//!    shorter than the caller's threshold skip thread spawning entirely.
//!
//! Results are gathered through a channel of `(chunk_index, result)` pairs
//! scattered into a pre-sized slot vector — no locks, and no reliance on
//! arrival order.

use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

pub use hiermeans_obs::{LaneBuf, LaneClock, LaneInterval};

/// Optional worker-lane recording for one parallel section: the collector's
/// clock plus the caller's pre-allocated interval buffer. `None` (the common
/// case, and always the case under a disabled collector) records nothing and
/// costs one branch per chunk.
pub type Lanes<'a> = Option<(LaneClock, &'a mut LaneBuf)>;

/// A failure from a chunked parallel computation: either a worker's typed
/// error or a worker panic that was caught and isolated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError<E> {
    /// A worker closure returned `Err`.
    Task(E),
    /// A worker closure panicked; the panic was caught so the process (and
    /// the sibling chunks) survive, and the payload is preserved.
    WorkerPanic {
        /// Index of the chunk whose closure panicked.
        chunk: usize,
        /// The panic payload rendered as text (`String`/`&str` payloads are
        /// kept verbatim; anything else becomes a placeholder).
        payload: String,
    },
}

impl<E> ParallelError<E> {
    /// Maps the task-error type, leaving panics untouched.
    pub fn map_task<F, G: FnOnce(E) -> F>(self, f: G) -> ParallelError<F> {
        match self {
            ParallelError::Task(e) => ParallelError::Task(f(e)),
            ParallelError::WorkerPanic { chunk, payload } => {
                ParallelError::WorkerPanic { chunk, payload }
            }
        }
    }
}

impl<E: fmt::Display> fmt::Display for ParallelError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::Task(e) => e.fmt(f),
            ParallelError::WorkerPanic { chunk, payload } => {
                write!(f, "worker panicked in chunk {chunk}: {payload}")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ParallelError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParallelError::Task(e) => Some(e),
            ParallelError::WorkerPanic { .. } => None,
        }
    }
}

/// Renders a caught panic payload: `&str` and `String` payloads verbatim,
/// anything else as a placeholder.
fn panic_payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// How to split an index range into chunks and when to go parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunking {
    /// Items per chunk. Fixed at the call site so chunk boundaries depend
    /// only on the input length, which is what makes results reproducible
    /// across machines with different core counts.
    pub chunk_size: usize,
    /// Inputs shorter than this run on the calling thread (same chunked
    /// math, no spawning). Tune to where threading overhead breaks even.
    pub min_parallel_len: usize,
}

impl Chunking {
    /// A chunking policy with the given chunk size and parallelism threshold.
    #[must_use]
    pub const fn new(chunk_size: usize, min_parallel_len: usize) -> Self {
        Chunking {
            chunk_size,
            min_parallel_len,
        }
    }
}

/// Process-wide worker-count override used by benchmarks to time the serial
/// path against the parallel one; `0` means "auto" (available parallelism).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent [`try_map_chunks`] call to use `n` workers
/// (`None` restores automatic detection). Intended for benchmarks; results
/// are identical either way by construction.
pub fn set_worker_override(n: Option<usize>) {
    WORKER_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`try_map_chunks`] will use: the override if set,
/// otherwise [`std::thread::available_parallelism`], detected once and
/// cached — the detection reads cgroup state on Linux and costs tens of
/// microseconds, which would dominate small serial-path calls if paid on
/// every invocation.
pub fn worker_count() -> usize {
    static DETECTED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => *DETECTED.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from)),
        n => n,
    }
}

fn chunk_ranges(len: usize, chunk_size: usize) -> Vec<Range<usize>> {
    let chunk_size = chunk_size.max(1);
    (0..len.div_ceil(chunk_size))
        .map(|c| c * chunk_size..((c + 1) * chunk_size).min(len))
        .collect()
}

/// Runs one chunk's closure with panic isolation. `AssertUnwindSafe` is
/// sound here: on any failure (error or panic) every per-chunk result is
/// discarded and only the typed failure escapes, so no partially-mutated
/// state is ever observed by the caller.
fn run_chunk<T, E, F>(chunk: usize, range: Range<usize>, map: &F) -> Result<T, ParallelError<E>>
where
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| map(range))) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(e)) => Err(ParallelError::Task(e)),
        Err(payload) => Err(ParallelError::WorkerPanic {
            chunk,
            payload: panic_payload_text(payload.as_ref()),
        }),
    }
}

/// Applies `map` to each chunk of `0..len` and returns the per-chunk results
/// in ascending chunk order.
///
/// Runs serially (on the calling thread, over the same chunks in the same
/// order) when `len < chunking.min_parallel_len`, when there is at most one
/// chunk, or when only one worker is available.
///
/// # Errors
///
/// Returns the first failure in chunk order — the same one serial execution
/// would surface. A worker that returns `Err` yields
/// [`ParallelError::Task`]; a worker that panics yields
/// [`ParallelError::WorkerPanic`] instead of aborting the process. All
/// claimed chunks run to completion first, so a failure in one chunk never
/// leaves another chunk half-observed.
pub fn try_map_chunks<T, E, F>(
    len: usize,
    chunking: Chunking,
    map: F,
) -> Result<Vec<T>, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    try_map_chunks_with_workers(len, chunking, worker_count(), map)
}

/// [`try_map_chunks`] with worker-lane recording: each chunk's execution is
/// stamped `(chunk, worker, begin_us, end_us)` into `lanes` (serial chunks
/// record as worker 0), the coordinator merges parallel workers' intervals
/// in chunk order, and one run is closed per call. Chunk boundaries — and
/// therefore the recorded lane *structure* — are identical for every worker
/// count.
///
/// # Errors
///
/// Identical to [`try_map_chunks`].
pub fn try_map_chunks_lanes<T, E, F>(
    len: usize,
    chunking: Chunking,
    lanes: Lanes<'_>,
    map: F,
) -> Result<Vec<T>, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    try_map_chunks_with_workers_lanes(len, chunking, worker_count(), lanes, map)
}

/// [`try_map_chunks`] with an explicit worker count, bypassing detection and
/// the global override. `workers <= 1` is the serial path; tests use this to
/// compare serial and parallel results without touching process state.
///
/// # Errors
///
/// Identical to [`try_map_chunks`].
pub fn try_map_chunks_with_workers<T, E, F>(
    len: usize,
    chunking: Chunking,
    workers: usize,
    map: F,
) -> Result<Vec<T>, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    try_map_chunks_with_workers_lanes(len, chunking, workers, None, map)
}

/// [`try_map_chunks_lanes`] with an explicit worker count — the full
/// implementation every other chunk-mapping entry point delegates to.
///
/// # Errors
///
/// Identical to [`try_map_chunks`].
pub fn try_map_chunks_with_workers_lanes<T, E, F>(
    len: usize,
    chunking: Chunking,
    workers: usize,
    mut lanes: Lanes<'_>,
    map: F,
) -> Result<Vec<T>, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    let ranges = chunk_ranges(len, chunking.chunk_size);
    let workers = workers.min(ranges.len());
    if len < chunking.min_parallel_len || workers <= 1 {
        // The serial path records the identical chunk structure on lane 0,
        // directly into the caller's buffer — no merging, no allocation
        // beyond the buffer's pre-reserved capacity.
        let out = ranges
            .into_iter()
            .enumerate()
            .map(|(chunk, range)| match lanes.as_mut() {
                Some((clock, buf)) => {
                    let begin_us = clock.now_us();
                    let result = run_chunk(chunk, range, &map);
                    buf.record(chunk, 0, begin_us, clock.now_us());
                    result
                }
                None => run_chunk(chunk, range, &map),
            })
            .collect();
        if let Some((_, buf)) = lanes.as_mut() {
            buf.end_run();
        }
        return out;
    }

    let n_chunks = ranges.len();
    let clock = lanes.as_ref().map(|(clock, _)| *clock);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, ParallelError<E>>)>();
    let mut slots: Vec<Option<Result<T, ParallelError<E>>>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    let mut recorded: Vec<LaneInterval> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let ranges = &ranges;
            let map = &map;
            // Workers stamp intervals into a thread-local vector — no
            // locks, no channel traffic per interval — returned through
            // the scoped join handle when the worker retires.
            handles.push(scope.spawn(move || {
                // Memory telemetry: when a memory-enabled collector is
                // live, this worker's allocations fold into the process
                // tallies that the coordinator's open span picks up. When
                // none is, `worker_tally_begin` is one relaxed load.
                let tally = hiermeans_obs::memhook::worker_tally_begin();
                let mut local: Vec<LaneInterval> = match clock {
                    Some(_) => Vec::with_capacity(n_chunks),
                    None => Vec::new(),
                };
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = ranges.get(idx) else { break };
                    let begin_us = clock.as_ref().map(LaneClock::now_us);
                    let result = run_chunk(idx, range.clone(), map);
                    if let (Some(clock), Some(begin_us)) = (clock.as_ref(), begin_us) {
                        local.push(LaneInterval {
                            chunk: u32::try_from(idx).unwrap_or(u32::MAX),
                            worker: u32::try_from(worker).unwrap_or(u32::MAX),
                            run: 0,
                            begin_us,
                            end_us: clock.now_us(),
                        });
                    }
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                }
                hiermeans_obs::memhook::worker_tally_end(tally);
                local
            }));
        }
        drop(tx);
        for (idx, result) in rx {
            slots[idx] = Some(result);
        }
        for handle in handles {
            if let Ok(local) = handle.join() {
                recorded.extend(local);
            }
        }
    });

    if let Some((_, buf)) = lanes.as_mut() {
        buf.absorb_run(recorded);
    }

    let mut out = Vec::with_capacity(n_chunks);
    for slot in slots {
        match slot {
            Some(result) => out.push(result?),
            // Unreachable by construction (every chunk index is claimed
            // exactly once), but a typed failure beats a panic in the
            // crate whose job is panic isolation.
            None => {
                return Err(ParallelError::WorkerPanic {
                    chunk: out.len(),
                    payload: "chunk result missing from gather".to_owned(),
                })
            }
        }
    }
    Ok(out)
}

/// Applies `map` to every index in `0..len` and returns the results in index
/// order, parallelizing over chunks. Convenience wrapper for per-item work
/// (e.g. one dendrogram cut per candidate `k`).
///
/// # Errors
///
/// Returns the first failure in index order, as serial execution would; a
/// panicking worker surfaces as [`ParallelError::WorkerPanic`].
pub fn try_map_items<T, E, F>(
    len: usize,
    chunking: Chunking,
    map: F,
) -> Result<Vec<T>, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    try_map_items_lanes(len, chunking, None, map)
}

/// [`try_map_items`] with worker-lane recording (see
/// [`try_map_chunks_lanes`]).
///
/// # Errors
///
/// Identical to [`try_map_items`].
pub fn try_map_items_lanes<T, E, F>(
    len: usize,
    chunking: Chunking,
    lanes: Lanes<'_>,
    map: F,
) -> Result<Vec<T>, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let chunks = try_map_chunks_lanes(len, chunking, lanes, |range| {
        range.map(&map).collect::<Result<Vec<T>, E>>()
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Maps each chunk of `0..len` to a partial result, then folds the partials
/// **in ascending chunk order** — the ordered reduction that keeps
/// floating-point accumulation deterministic (e.g. the SOM batch epoch's
/// per-chunk numerator/denominator partials).
///
/// # Errors
///
/// Returns the first failure in chunk order, as serial execution would; a
/// panicking worker surfaces as [`ParallelError::WorkerPanic`].
pub fn try_map_reduce<T, E, A, F, R>(
    len: usize,
    chunking: Chunking,
    map: F,
    init: A,
    reduce: R,
) -> Result<A, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
    R: FnMut(A, T) -> A,
{
    try_map_reduce_lanes(len, chunking, None, map, init, reduce)
}

/// [`try_map_reduce`] with worker-lane recording (see
/// [`try_map_chunks_lanes`]). The fold still runs in ascending chunk order.
///
/// # Errors
///
/// Identical to [`try_map_reduce`].
pub fn try_map_reduce_lanes<T, E, A, F, R>(
    len: usize,
    chunking: Chunking,
    lanes: Lanes<'_>,
    map: F,
    init: A,
    reduce: R,
) -> Result<A, ParallelError<E>>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
    R: FnMut(A, T) -> A,
{
    let partials = try_map_chunks_lanes(len, chunking, lanes, map)?;
    Ok(partials.into_iter().fold(init, reduce))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: Chunking = Chunking::new(4, 0);

    #[test]
    fn chunk_boundaries_depend_only_on_len() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
    }

    #[test]
    fn results_arrive_in_chunk_order() {
        let chunks: Vec<Vec<usize>> =
            try_map_chunks(103, SMALL, |r| Ok::<_, ()>(r.collect())).unwrap();
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree_for_all_worker_counts() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for workers in [1, 2, 3, 7, 64] {
            let chunks = try_map_chunks_with_workers(257, Chunking::new(16, 0), workers, |r| {
                Ok::<_, ()>(r.map(|i| i * i).collect::<Vec<_>>())
            })
            .unwrap();
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, expected, "workers = {workers}");
        }
    }

    #[test]
    fn first_error_in_chunk_order_wins() {
        // Chunks 2 and 5 fail; chunk order says the caller sees chunk 2's.
        for workers in [1, 4] {
            let err = try_map_chunks_with_workers(32, SMALL, workers, |r| {
                let chunk = r.start / 4;
                if chunk == 2 || chunk == 5 {
                    Err(format!("chunk {chunk} failed"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert_eq!(
                err,
                ParallelError::Task("chunk 2 failed".to_owned()),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn worker_panic_is_isolated_and_typed() {
        // A panicking chunk must not abort the process; it surfaces as a
        // typed WorkerPanic carrying the chunk index and payload, on both
        // the serial and the parallel path.
        for workers in [1, 4] {
            let err = try_map_chunks_with_workers(32, SMALL, workers, |r| {
                if r.start / 4 == 3 {
                    panic!("injected fault in chunk 3");
                }
                Ok::<_, ()>(())
            })
            .unwrap_err();
            assert_eq!(
                err,
                ParallelError::WorkerPanic {
                    chunk: 3,
                    payload: "injected fault in chunk 3".to_owned()
                },
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn panic_vs_error_ranked_by_chunk_order() {
        // A panic in chunk 1 outranks an error in chunk 4 — failures are
        // ordered uniformly by chunk index, whatever their kind.
        for workers in [1, 4] {
            let err = try_map_chunks_with_workers(32, SMALL, workers, |r| {
                let chunk = r.start / 4;
                if chunk == 1 {
                    panic!("panic in chunk 1");
                }
                if chunk == 4 {
                    return Err("error in chunk 4".to_owned());
                }
                Ok(())
            })
            .unwrap_err();
            assert!(
                matches!(err, ParallelError::WorkerPanic { chunk: 1, .. }),
                "workers = {workers}: {err:?}"
            );
        }
        // And the mirror image: an error in chunk 0 outranks a later panic.
        let err = try_map_chunks_with_workers(32, SMALL, 4, |r| {
            let chunk = r.start / 4;
            if chunk == 0 {
                return Err("error in chunk 0".to_owned());
            }
            if chunk == 5 {
                panic!("panic in chunk 5");
            }
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err, ParallelError::Task("error in chunk 0".to_owned()));
    }

    #[test]
    fn non_string_panic_payload_is_placeholder() {
        let err = try_map_chunks_with_workers(8, SMALL, 1, |r| {
            if r.start == 0 {
                std::panic::panic_any(42_i32);
            }
            Ok::<_, ()>(())
        })
        .unwrap_err();
        assert_eq!(
            err,
            ParallelError::WorkerPanic {
                chunk: 0,
                payload: "<non-string panic payload>".to_owned()
            }
        );
    }

    #[test]
    fn below_threshold_runs_serially_with_identical_results() {
        let threshold = Chunking::new(4, 1_000_000);
        let serial: Vec<usize> = try_map_items(100, threshold, |i| Ok::<_, ()>(i + 1)).unwrap();
        let parallel: Vec<usize> =
            try_map_items(100, Chunking::new(4, 0), |i| Ok::<_, ()>(i + 1)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn map_reduce_folds_in_chunk_order() {
        let concat = try_map_reduce(
            12,
            SMALL,
            |r| Ok::<_, ()>(format!("[{}..{})", r.start, r.end)),
            String::new(),
            |acc, part| acc + &part,
        )
        .unwrap();
        assert_eq!(concat, "[0..4)[4..8)[8..12)");
    }

    #[test]
    fn worker_override_round_trips() {
        set_worker_override(Some(3));
        assert_eq!(worker_count(), 3);
        set_worker_override(None);
        assert!(worker_count() >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<()> = try_map_chunks(0, SMALL, |_| Ok::<_, ()>(())).unwrap();
        assert!(out.is_empty());
    }

    fn lane_clock() -> LaneClock {
        hiermeans_obs::Collector::enabled()
            .lane_clock()
            .expect("enabled collector has a lane clock")
    }

    #[test]
    fn lanes_record_every_chunk_exactly_once_for_any_worker_count() {
        let clock = lane_clock();
        for workers in [1, 2, 3, 8] {
            let mut buf = LaneBuf::with_capacity(26);
            let out = try_map_chunks_with_workers_lanes(
                103,
                SMALL,
                workers,
                Some((clock, &mut buf)),
                |r| Ok::<_, ()>(r.len()),
            )
            .unwrap();
            assert_eq!(out.len(), 26);
            assert_eq!(buf.runs(), 1, "workers = {workers}");
            let chunks: Vec<u32> = buf.intervals().iter().map(|iv| iv.chunk).collect();
            assert_eq!(
                chunks,
                (0..26).collect::<Vec<u32>>(),
                "workers = {workers}: chunk indices must partition 0..n_chunks in order"
            );
            for iv in buf.intervals() {
                assert!(iv.end_us >= iv.begin_us);
                if workers == 1 {
                    assert_eq!(iv.worker, 0, "serial path records on lane 0");
                } else {
                    assert!((iv.worker as usize) < workers);
                }
            }
        }
    }

    #[test]
    fn lanes_accumulate_runs_across_calls() {
        let clock = lane_clock();
        let mut buf = LaneBuf::with_capacity(6);
        for _ in 0..3 {
            try_map_items_lanes(8, SMALL, Some((clock, &mut buf)), Ok::<_, ()>).unwrap();
        }
        assert_eq!(buf.runs(), 3);
        assert_eq!(buf.intervals().len(), 6);
        assert_eq!(buf.intervals()[2].run, 1);
        assert_eq!(buf.intervals()[5].run, 2);
    }

    #[test]
    fn lanes_none_records_nothing_and_reduce_matches() {
        let clock = lane_clock();
        let mut buf = LaneBuf::new();
        let with_lanes = try_map_reduce_lanes(
            12,
            SMALL,
            Some((clock, &mut buf)),
            |r| Ok::<_, ()>(r.sum::<usize>()),
            0usize,
            |a, b| a + b,
        )
        .unwrap();
        let without = try_map_reduce(
            12,
            SMALL,
            |r| Ok::<_, ()>(r.sum::<usize>()),
            0usize,
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(with_lanes, without);
        assert_eq!(buf.intervals().len(), 3);
    }

    #[test]
    fn parallel_error_display_and_map_task() {
        let p: ParallelError<String> = ParallelError::WorkerPanic {
            chunk: 2,
            payload: "boom".into(),
        };
        assert_eq!(p.to_string(), "worker panicked in chunk 2: boom");
        let t: ParallelError<String> = ParallelError::Task("bad".into());
        assert_eq!(t.to_string(), "bad");
        let mapped = t.map_task(|s| format!("wrapped: {s}"));
        assert_eq!(mapped, ParallelError::Task("wrapped: bad".to_owned()));
        let mapped_panic = p.map_task(|s| s);
        assert!(matches!(
            mapped_panic,
            ParallelError::WorkerPanic { chunk: 2, .. }
        ));
    }
}
