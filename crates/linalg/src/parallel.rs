//! Deterministic chunked map-reduce over index ranges.
//!
//! Every parallel hot path in the workspace — pairwise distance matrices,
//! the SOM's best-matching-unit search and batch-epoch accumulation, and the
//! per-`k` dendrogram score sweep — routes through this module instead of
//! hand-rolling its own thread pool. The design enforces three invariants:
//!
//! 1. **Bit-for-bit determinism.** Chunk boundaries are a pure function of
//!    the input length and the caller's chunk size — never of the worker
//!    count — and per-chunk results are reduced in ascending chunk order.
//!    The same input therefore produces the same bits on a 1-core and a
//!    96-core machine, and the serial fallback executes the identical
//!    chunked computation.
//! 2. **Error propagation.** Workers return `Result`s; the first error in
//!    *chunk order* (the same one serial execution would surface) is
//!    returned to the caller. Worker panics propagate normally through
//!    [`std::thread::scope`] — nothing is swallowed.
//! 3. **No oversubscription cliffs.** The worker count follows
//!    [`std::thread::available_parallelism`] with no hard cap, and inputs
//!    shorter than the caller's threshold skip thread spawning entirely.
//!
//! Results are gathered through a channel of `(chunk_index, result)` pairs
//! scattered into a pre-sized slot vector — no locks, and no reliance on
//! arrival order.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How to split an index range into chunks and when to go parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunking {
    /// Items per chunk. Fixed at the call site so chunk boundaries depend
    /// only on the input length, which is what makes results reproducible
    /// across machines with different core counts.
    pub chunk_size: usize,
    /// Inputs shorter than this run on the calling thread (same chunked
    /// math, no spawning). Tune to where threading overhead breaks even.
    pub min_parallel_len: usize,
}

impl Chunking {
    /// A chunking policy with the given chunk size and parallelism threshold.
    #[must_use]
    pub const fn new(chunk_size: usize, min_parallel_len: usize) -> Self {
        Chunking {
            chunk_size,
            min_parallel_len,
        }
    }
}

/// Process-wide worker-count override used by benchmarks to time the serial
/// path against the parallel one; `0` means "auto" (available parallelism).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequent [`try_map_chunks`] call to use `n` workers
/// (`None` restores automatic detection). Intended for benchmarks; results
/// are identical either way by construction.
pub fn set_worker_override(n: Option<usize>) {
    WORKER_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`try_map_chunks`] will use: the override if set,
/// otherwise [`std::thread::available_parallelism`], detected once and
/// cached — the detection reads cgroup state on Linux and costs tens of
/// microseconds, which would dominate small serial-path calls if paid on
/// every invocation.
pub fn worker_count() -> usize {
    static DETECTED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => *DETECTED.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from)),
        n => n,
    }
}

fn chunk_ranges(len: usize, chunk_size: usize) -> Vec<Range<usize>> {
    let chunk_size = chunk_size.max(1);
    (0..len.div_ceil(chunk_size))
        .map(|c| c * chunk_size..((c + 1) * chunk_size).min(len))
        .collect()
}

/// Applies `map` to each chunk of `0..len` and returns the per-chunk results
/// in ascending chunk order.
///
/// Runs serially (on the calling thread, over the same chunks in the same
/// order) when `len < chunking.min_parallel_len`, when there is at most one
/// chunk, or when only one worker is available.
///
/// # Errors
///
/// Returns the first error in chunk order — the same error serial execution
/// would produce. All claimed chunks run to completion first, so an error
/// in one chunk never leaves another chunk half-observed.
pub fn try_map_chunks<T, E, F>(len: usize, chunking: Chunking, map: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    try_map_chunks_with_workers(len, chunking, worker_count(), map)
}

/// [`try_map_chunks`] with an explicit worker count, bypassing detection and
/// the global override. `workers <= 1` is the serial path; tests use this to
/// compare serial and parallel results without touching process state.
///
/// # Errors
///
/// Identical to [`try_map_chunks`].
pub fn try_map_chunks_with_workers<T, E, F>(
    len: usize,
    chunking: Chunking,
    workers: usize,
    map: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    let ranges = chunk_ranges(len, chunking.chunk_size);
    let workers = workers.min(ranges.len());
    if len < chunking.min_parallel_len || workers <= 1 {
        return ranges.into_iter().map(map).collect();
    }

    let n_chunks = ranges.len();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, E>)>();
    let mut slots: Vec<Option<Result<T, E>>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let ranges = &ranges;
            let map = &map;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(range) = ranges.get(idx) else { break };
                if tx.send((idx, map(range.clone()))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, result) in rx {
            slots[idx] = Some(result);
        }
    });

    let mut out = Vec::with_capacity(n_chunks);
    for slot in slots {
        out.push(slot.expect("every chunk index is claimed exactly once")?);
    }
    Ok(out)
}

/// Applies `map` to every index in `0..len` and returns the results in index
/// order, parallelizing over chunks. Convenience wrapper for per-item work
/// (e.g. one dendrogram cut per candidate `k`).
///
/// # Errors
///
/// Returns the first error in index order, as serial execution would.
pub fn try_map_items<T, E, F>(len: usize, chunking: Chunking, map: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let chunks = try_map_chunks(len, chunking, |range| {
        range.map(&map).collect::<Result<Vec<T>, E>>()
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Maps each chunk of `0..len` to a partial result, then folds the partials
/// **in ascending chunk order** — the ordered reduction that keeps
/// floating-point accumulation deterministic (e.g. the SOM batch epoch's
/// per-chunk numerator/denominator partials).
///
/// # Errors
///
/// Returns the first error in chunk order, as serial execution would.
pub fn try_map_reduce<T, E, A, F, R>(
    len: usize,
    chunking: Chunking,
    map: F,
    init: A,
    reduce: R,
) -> Result<A, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
    R: FnMut(A, T) -> A,
{
    let partials = try_map_chunks(len, chunking, map)?;
    Ok(partials.into_iter().fold(init, reduce))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: Chunking = Chunking::new(4, 0);

    #[test]
    fn chunk_boundaries_depend_only_on_len() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
    }

    #[test]
    fn results_arrive_in_chunk_order() {
        let chunks: Vec<Vec<usize>> =
            try_map_chunks(103, SMALL, |r| Ok::<_, ()>(r.collect())).unwrap();
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree_for_all_worker_counts() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for workers in [1, 2, 3, 7, 64] {
            let chunks = try_map_chunks_with_workers(257, Chunking::new(16, 0), workers, |r| {
                Ok::<_, ()>(r.map(|i| i * i).collect::<Vec<_>>())
            })
            .unwrap();
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, expected, "workers = {workers}");
        }
    }

    #[test]
    fn first_error_in_chunk_order_wins() {
        // Chunks 2 and 5 fail; chunk order says the caller sees chunk 2's.
        for workers in [1, 4] {
            let err = try_map_chunks_with_workers(32, SMALL, workers, |r| {
                let chunk = r.start / 4;
                if chunk == 2 || chunk == 5 {
                    Err(format!("chunk {chunk} failed"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert_eq!(err, "chunk 2 failed", "workers = {workers}");
        }
    }

    #[test]
    fn below_threshold_runs_serially_with_identical_results() {
        let threshold = Chunking::new(4, 1_000_000);
        let serial: Vec<usize> = try_map_items(100, threshold, |i| Ok::<_, ()>(i + 1)).unwrap();
        let parallel: Vec<usize> =
            try_map_items(100, Chunking::new(4, 0), |i| Ok::<_, ()>(i + 1)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn map_reduce_folds_in_chunk_order() {
        let concat = try_map_reduce(
            12,
            SMALL,
            |r| Ok::<_, ()>(format!("[{}..{})", r.start, r.end)),
            String::new(),
            |acc, part| acc + &part,
        )
        .unwrap();
        assert_eq!(concat, "[0..4)[4..8)[8..12)");
    }

    #[test]
    fn worker_override_round_trips() {
        set_worker_override(Some(3));
        assert_eq!(worker_count(), 3);
        set_worker_override(None);
        assert!(worker_count() >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<()> = try_map_chunks(0, SMALL, |_| Ok::<_, ()>(())).unwrap();
        assert!(out.is_empty());
    }
}
