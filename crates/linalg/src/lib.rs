//! Dense linear algebra and statistics substrate for the `hiermeans` workspace.
//!
//! This crate provides the numerical building blocks that the rest of the
//! workspace — the self-organizing map, the hierarchical clustering, and the
//! workload characterization pipeline — are built on:
//!
//! * [`Matrix`] — a dense, row-major `f64` matrix with the operations the
//!   workspace needs (products, transposes, row/column views, covariance).
//! * [`distance`] — point-to-point metrics ([`distance::Metric`]) used by the
//!   SOM's best-matching-unit search and by the clustering linkage rules.
//! * [`stats`] — descriptive statistics (means, variance, correlation,
//!   percentiles) used throughout.
//! * [`scale`] — feature scalers ([`scale::Standardizer`] implements the
//!   paper's "subtract the mean and divide by standard deviation" step).
//! * [`eigen`] — a cyclic Jacobi eigensolver for symmetric matrices.
//! * [`pca`] — principal components analysis, used both to initialize the SOM
//!   (the paper initializes unit weights from the two major principal
//!   components) and as the dimension-reduction baseline the paper compares
//!   SOM against.
//! * [`kernels`] — cache-blocked compute kernels (matmul/syrk, norm-trick
//!   batched distances) behind the hot paths, selected by
//!   [`kernels::KernelPolicy`].
//!
//! # Example
//!
//! ```
//! use hiermeans_linalg::{Matrix, pca::Pca};
//!
//! # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
//! let data = Matrix::from_rows(&[
//!     vec![1.0, 2.0, 3.0],
//!     vec![2.0, 4.1, 6.2],
//!     vec![3.0, 6.2, 9.1],
//!     vec![4.0, 7.9, 12.3],
//! ])?;
//! let pca = Pca::fit(&data, 2)?;
//! let reduced = pca.transform(&data)?;
//! assert_eq!(reduced.shape(), (4, 2));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::needless_range_loop, clippy::redundant_clone)]

mod error;
mod matrix;

pub mod distance;
pub mod eigen;
pub mod kernels;
pub mod parallel;
pub mod pca;
pub mod rows;
pub mod scale;
pub mod stats;
pub mod validate;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use parallel::ParallelError;
