use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The input collection was empty where at least one element is required.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive upper bound.
        len: usize,
        /// Which axis or collection was indexed.
        what: &'static str,
    },
    /// A numerical routine failed to converge within its iteration budget.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
    /// The input contained a non-finite value (NaN or infinity).
    NonFinite {
        /// Where the non-finite value was found.
        what: &'static str,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// A parallel worker panicked; the panic was caught and isolated by
    /// [`crate::parallel`] instead of aborting the process.
    WorkerPanic {
        /// Index of the chunk whose worker panicked.
        chunk: usize,
        /// The panic payload rendered as text.
        payload: String,
    },
    /// The input failed stage-boundary validation (see [`crate::validate`]).
    InvalidData {
        /// The typed diagnostics describing what was wrong.
        report: crate::validate::ValidationReport,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Empty { what } => write!(f, "empty input: {what}"),
            LinalgError::OutOfBounds { index, len, what } => {
                write!(f, "index {index} out of bounds for {what} of length {len}")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge within {iterations} iterations"
                )
            }
            LinalgError::NonFinite { what } => {
                write!(f, "non-finite value encountered in {what}")
            }
            LinalgError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            LinalgError::WorkerPanic { chunk, payload } => {
                write!(f, "worker panicked in chunk {chunk}: {payload}")
            }
            LinalgError::InvalidData { report } => write!(f, "invalid input data: {report}"),
        }
    }
}

impl Error for LinalgError {}

impl From<crate::parallel::ParallelError<LinalgError>> for LinalgError {
    fn from(e: crate::parallel::ParallelError<LinalgError>) -> Self {
        match e {
            crate::parallel::ParallelError::Task(e) => e,
            crate::parallel::ParallelError::WorkerPanic { chunk, payload } => {
                LinalgError::WorkerPanic { chunk, payload }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = LinalgError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        assert_eq!(
            err.to_string(),
            "shape mismatch in matmul: left is 2x3, right is 4x5"
        );
    }

    #[test]
    fn display_empty() {
        let err = LinalgError::Empty { what: "rows" };
        assert_eq!(err.to_string(), "empty input: rows");
    }

    #[test]
    fn display_no_convergence() {
        let err = LinalgError::NoConvergence {
            routine: "jacobi",
            iterations: 100,
        };
        assert_eq!(
            err.to_string(),
            "jacobi did not converge within 100 iterations"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
