//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! Jacobi is a good fit here: the covariance matrices produced by the
//! characterization pipeline are small (tens to a few hundred columns),
//! symmetric, and we want *all* eigenpairs with high relative accuracy for
//! PCA initialization of the SOM.

use crate::{LinalgError, Matrix};

/// The result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by descending eigenvalue. `vectors` holds the
/// eigenvectors as *columns*, so `matrix * vectors[:, k] ≈ values[k] *
/// vectors[:, k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, in the same order.
    pub vectors: Matrix,
}

/// Default iteration budget for [`jacobi_eigen`]: the number of full sweeps.
pub const DEFAULT_MAX_SWEEPS: usize = 100;

/// Computes all eigenpairs of a symmetric matrix with cyclic Jacobi rotations.
///
/// # Errors
///
/// * [`LinalgError::InvalidParameter`] if `a` is not square or not symmetric
///   (tolerance `1e-9` relative to the largest entry).
/// * [`LinalgError::NonFinite`] if `a` contains NaN or infinity.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass does not vanish
///   within [`DEFAULT_MAX_SWEEPS`] sweeps.
///
/// # Example
///
/// ```
/// use hiermeans_linalg::{Matrix, eigen::jacobi_eigen};
///
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let e = jacobi_eigen(&a)?;
/// assert!((e.values[0] - 3.0).abs() < 1e-9);
/// assert!((e.values[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn jacobi_eigen(a: &Matrix) -> Result<Eigen, LinalgError> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::InvalidParameter {
            name: "a",
            reason: "eigendecomposition requires a square matrix",
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite {
            what: "eigen input",
        });
    }
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, v| acc.max(v.abs()))
        .max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-9 * scale {
                return Err(LinalgError::InvalidParameter {
                    name: "a",
                    reason: "eigendecomposition requires a symmetric matrix",
                });
            }
        }
    }

    let mut d = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-12 * scale;

    for _sweep in 0..DEFAULT_MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| d[(i, j)] * d[(i, j)])
            .sum();
        if off.sqrt() <= tol {
            return Ok(sorted_eigen(d, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = d[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = d[(p, p)];
                let aqq = d[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, theta) on both sides: D <- G^T D G.
                for k in 0..n {
                    let dkp = d[(k, p)];
                    let dkq = d[(k, q)];
                    d[(k, p)] = c * dkp - s * dkq;
                    d[(k, q)] = s * dkp + c * dkq;
                }
                for k in 0..n {
                    let dpk = d[(p, k)];
                    let dqk = d[(q, k)];
                    d[(p, k)] = c * dpk - s * dqk;
                    d[(q, k)] = s * dpk + c * dqk;
                }
                // Accumulate eigenvectors: V <- V G.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // One final tolerance check before giving up.
    let off: f64 = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| d[(i, j)] * d[(i, j)])
        .sum();
    if off.sqrt() <= tol * 1e3 {
        return Ok(sorted_eigen(d, v));
    }
    Err(LinalgError::NoConvergence {
        routine: "jacobi_eigen",
        iterations: DEFAULT_MAX_SWEEPS,
    })
}

fn sorted_eigen(d: Matrix, v: Matrix) -> Eigen {
    let n = d.nrows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[(j, j)].total_cmp(&d[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&i| d[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert_close(e.values[0], 5.0, 1e-12);
        assert_close(e.values[1], 3.0, 1e-12);
        assert_close(e.values[2], 1.0, 1e-12);
    }

    #[test]
    fn two_by_two_known() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
    }

    #[test]
    fn eigen_residual_small() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&a).unwrap();
        for k in 0..3 {
            let vk = e.vectors.col(k);
            let av = a.matvec(&vk).unwrap();
            for i in 0..3 {
                assert_close(av[i], e.values[k] * vk[i], 1e-8);
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&a).unwrap();
        let vt_v = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(vt_v[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-9);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&a).unwrap();
        let trace = 6.0;
        assert_close(e.values.iter().sum::<f64>(), trace, 1e-9);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(jacobi_eigen(&a).is_err());
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]).unwrap();
        assert!(jacobi_eigen(&a).is_err());
    }

    #[test]
    fn rejects_nan() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(jacobi_eigen(&a).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[vec![7.0]]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.0]);
    }
}
