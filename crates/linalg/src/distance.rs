//! Point-to-point distance metrics.
//!
//! The paper uses the Euclidean distance both for the SOM's best-matching-unit
//! search and as the point-to-point distance underneath the clustering linkage
//! (Section III-B). The other metrics are provided for ablation studies.

use serde::{Deserialize, Serialize};

use crate::kernels::{self, KernelPolicy};
use crate::LinalgError;

/// A point-to-point distance metric over `f64` vectors.
///
/// # Example
///
/// ```
/// use hiermeans_linalg::distance::Metric;
///
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let d = Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0])?;
/// assert_eq!(d, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Metric {
    /// The L2 distance — the paper's choice.
    Euclidean,
    /// The squared L2 distance (avoids the square root; not a metric but
    /// order-equivalent to [`Metric::Euclidean`]).
    SquaredEuclidean,
    /// The L1 (city-block) distance.
    Manhattan,
    /// The L∞ distance.
    Chebyshev,
    /// The general Lp distance for `p >= 1`.
    Minkowski(f64),
    /// Cosine distance `1 - cos(a, b)`; 0 for identical directions.
    Cosine,
}

impl Metric {
    /// Computes the distance between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the vectors have different
    /// lengths, and [`LinalgError::InvalidParameter`] for
    /// [`Metric::Minkowski`] with `p < 1`.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
        if a.len() != b.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (a.len(), 1),
                right: (b.len(), 1),
                op: "distance",
            });
        }
        match self {
            Metric::Euclidean => Ok(sq_euclid(a, b).sqrt()),
            Metric::SquaredEuclidean => Ok(sq_euclid(a, b)),
            Metric::Manhattan => Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()),
            Metric::Chebyshev => Ok(a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)),
            Metric::Minkowski(p) => {
                if *p < 1.0 || !p.is_finite() {
                    return Err(LinalgError::InvalidParameter {
                        name: "p",
                        reason: "Minkowski order must be finite and >= 1",
                    });
                }
                Ok(a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y).abs().powf(*p))
                    .sum::<f64>()
                    .powf(1.0 / p))
            }
            Metric::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    // By convention the distance from the zero vector is 1
                    // (maximally dissimilar direction-wise).
                    return Ok(1.0);
                }
                Ok((1.0 - dot / (na * nb)).max(0.0))
            }
        }
    }
}

impl Default for Metric {
    /// Euclidean distance, the paper's configuration.
    fn default() -> Self {
        Metric::Euclidean
    }
}

fn sq_euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Chunking for [`pairwise`]: a handful of rows per chunk keeps the ragged
/// upper-triangle work balanced, and matrices under 64 rows are cheaper to
/// do in place than to spawn for. Public so lane-recording callers can size
/// their `LaneBuf`s to the chunk count this module will produce.
pub const PAIRWISE_CHUNKING: crate::parallel::Chunking = crate::parallel::Chunking::new(8, 64);

/// Computes the full pairwise distance matrix between the rows of `points`,
/// parallelizing over row chunks for large inputs.
///
/// The result is a symmetric `n x n` [`crate::Matrix`] with zero diagonal,
/// and is bit-for-bit identical to [`pairwise_serial`] regardless of the
/// worker count: each entry is computed independently by the same
/// expression, so scheduling cannot change any value. Small inputs and
/// single-worker environments dispatch straight to the serial loop, which
/// avoids the parallel path's gather overhead when there is nothing to win.
///
/// # Errors
///
/// Propagates errors from [`Metric::distance`].
pub fn pairwise(points: &crate::Matrix, metric: Metric) -> Result<crate::Matrix, LinalgError> {
    pairwise_lanes(points, metric, None)
}

/// [`pairwise`] with worker-lane recording.
///
/// When `lanes` is `Some`, the chunked strip decomposition runs even below
/// the parallelism threshold so the recorded chunk structure is a pure
/// function of `n` — never of the worker count. Each entry is computed by
/// the same expression either way, so the result stays bit-for-bit
/// identical to [`pairwise_serial`].
///
/// # Errors
///
/// Propagates errors from [`Metric::distance`].
pub fn pairwise_lanes(
    points: &crate::Matrix,
    metric: Metric,
    lanes: crate::parallel::Lanes<'_>,
) -> Result<crate::Matrix, LinalgError> {
    let n = points.nrows();
    if lanes.is_none()
        && (n < PAIRWISE_CHUNKING.min_parallel_len || crate::parallel::worker_count() <= 1)
    {
        return pairwise_serial(points, metric);
    }
    // Each chunk of rows yields its strict-upper-triangle strip
    // `(i, j > i, distance)` as one contiguous vector.
    let chunk_size = PAIRWISE_CHUNKING.chunk_size;
    let strips = crate::parallel::try_map_chunks_lanes(n, PAIRWISE_CHUNKING, lanes, |rows| {
        let mut strip = Vec::with_capacity(rows.clone().map(|i| n - i - 1).sum());
        for i in rows {
            for j in (i + 1)..n {
                strip.push(metric.distance(points.row(i), points.row(j))?);
            }
        }
        Ok::<_, LinalgError>(strip)
    })
    .map_err(LinalgError::from)?;
    // Scatter each strip into the upper triangle with row-contiguous
    // copies; per-entry iteration here would cost as much as the distance
    // computation itself.
    let mut d = crate::Matrix::zeros(n, n);
    for (c, strip) in strips.iter().enumerate() {
        let start = c * chunk_size;
        let end = ((c + 1) * chunk_size).min(n);
        let mut offset = 0;
        for i in start..end {
            let len = n - i - 1;
            d.row_mut(i)[(i + 1)..n].copy_from_slice(&strip[offset..offset + len]);
            offset += len;
        }
    }
    mirror_upper_to_lower(&mut d);
    Ok(d)
}

/// Copies the strict upper triangle onto the lower one, in cache-sized
/// tiles: a naive row-major read / column-major write transpose pays a
/// cache miss per element, roughly doubling [`pairwise`]'s runtime at
/// 1024+ rows.
fn mirror_upper_to_lower(d: &mut crate::Matrix) {
    const TILE: usize = 64;
    let n = d.nrows();
    let mut bi = 0;
    while bi < n {
        let bi_end = (bi + TILE).min(n);
        let mut bj = bi;
        while bj < n {
            let bj_end = (bj + TILE).min(n);
            for i in bi..bi_end {
                for j in bj.max(i + 1)..bj_end {
                    d[(j, i)] = d[(i, j)];
                }
            }
            bj = bj_end;
        }
        bi = bi_end;
    }
}

/// Computes the pairwise distance matrix with an explicit [`KernelPolicy`].
///
/// Under [`KernelPolicy::Blocked`] with a (squared) Euclidean metric, each
/// entry is computed by the norm trick `‖a‖² + ‖b‖² − 2·a·b` with
/// precomputed row norms and unrolled dot products — roughly half the
/// memory traffic of the subtract-square loop. The trick reassociates
/// floating-point sums, so entries agree with [`pairwise`] only to ULP
/// tolerance (exactly when the inputs are integer-valued, e.g. SOM grid
/// positions, where every intermediate is exact); values are still
/// deterministic for a given input and independent of the worker count.
/// Other metrics, and [`KernelPolicy::Scalar`], fall back to [`pairwise`].
///
/// # Errors
///
/// Propagates errors from [`Metric::distance`].
pub fn pairwise_with_policy(
    points: &crate::Matrix,
    metric: Metric,
    policy: KernelPolicy,
) -> Result<crate::Matrix, LinalgError> {
    pairwise_with_policy_lanes(points, metric, policy, None)
}

/// [`pairwise_with_policy`] with worker-lane recording; like
/// [`pairwise_lanes`], lane recording pins the chunked strip decomposition
/// so the lane structure depends only on `n` (and is identical under either
/// [`KernelPolicy`]).
///
/// # Errors
///
/// Propagates errors from [`Metric::distance`].
pub fn pairwise_with_policy_lanes(
    points: &crate::Matrix,
    metric: Metric,
    policy: KernelPolicy,
    lanes: crate::parallel::Lanes<'_>,
) -> Result<crate::Matrix, LinalgError> {
    let squared = match (policy, metric) {
        (KernelPolicy::Blocked, Metric::Euclidean) => false,
        (KernelPolicy::Blocked, Metric::SquaredEuclidean) => true,
        _ => return pairwise_lanes(points, metric, lanes),
    };
    let n = points.nrows();
    let mut norms = vec![0.0; n];
    kernels::row_sq_norms_into(points, &mut norms);
    let entry = |i: usize, j: usize| {
        let d2 =
            (norms[i] + norms[j] - 2.0 * kernels::dot_fast(points.row(i), points.row(j))).max(0.0);
        if squared {
            d2
        } else {
            d2.sqrt()
        }
    };
    let mut d = crate::Matrix::zeros(n, n);
    if lanes.is_none()
        && (n < PAIRWISE_CHUNKING.min_parallel_len || crate::parallel::worker_count() <= 1)
    {
        for i in 0..n {
            for j in (i + 1)..n {
                let v = entry(i, j);
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        return Ok(d);
    }
    // Same strip decomposition as `pairwise`: per-entry values are a pure
    // function of (i, j), so the result is identical for any worker count.
    let chunk_size = PAIRWISE_CHUNKING.chunk_size;
    let strips = crate::parallel::try_map_chunks_lanes(n, PAIRWISE_CHUNKING, lanes, |rows| {
        let mut strip = Vec::with_capacity(rows.clone().map(|i| n - i - 1).sum());
        for i in rows {
            for j in (i + 1)..n {
                strip.push(entry(i, j));
            }
        }
        Ok::<_, LinalgError>(strip)
    })
    .map_err(LinalgError::from)?;
    for (c, strip) in strips.iter().enumerate() {
        let start = c * chunk_size;
        let end = ((c + 1) * chunk_size).min(n);
        let mut offset = 0;
        for i in start..end {
            let len = n - i - 1;
            d.row_mut(i)[(i + 1)..n].copy_from_slice(&strip[offset..offset + len]);
            offset += len;
        }
    }
    mirror_upper_to_lower(&mut d);
    Ok(d)
}

/// A tiled distance provider: row strips of the pairwise distance matrix
/// computed on the fly, without ever materializing the `n x n` matrix.
///
/// This is the memory backbone of the large-`n` clustering path: SLINK- and
/// CLINK-style algorithms consume one row strip at a time, so their peak
/// memory is O(n) while the distances themselves stay exactly what
/// [`pairwise_with_policy`] would have produced. Under
/// [`KernelPolicy::Blocked`] with a (squared) Euclidean metric, rows are
/// filled with the norm trick `‖a‖² + ‖b‖² − 2·a·b` over row norms
/// precomputed once (O(n)) — the same expression as the dense blocked path,
/// so entries agree bit for bit with it. Every other metric/policy
/// combination falls back to [`Metric::distance`] per entry, matching
/// [`pairwise`] bit for bit.
///
/// # Example
///
/// ```
/// use hiermeans_linalg::distance::{pairwise, Metric, TiledDistances};
/// use hiermeans_linalg::kernels::KernelPolicy;
/// use hiermeans_linalg::Matrix;
///
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let pts = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]])?;
/// let tiled = TiledDistances::new(&pts, Metric::Euclidean, KernelPolicy::Scalar);
/// let dense = pairwise(&pts, Metric::Euclidean)?;
/// let mut row = vec![0.0; 3];
/// tiled.fill_row(1, &mut row)?;
/// assert_eq!(&row, &[dense[(1, 0)], 0.0, dense[(1, 2)]]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TiledDistances<'a> {
    points: &'a crate::Matrix,
    metric: Metric,
    /// Squared row norms, precomputed once when the norm-trick fast path
    /// applies (Blocked policy + (squared) Euclidean metric).
    norms: Option<Vec<f64>>,
    squared: bool,
}

impl<'a> TiledDistances<'a> {
    /// Builds a provider over the rows of `points`. Precomputes O(n) row
    /// norms when `policy`/`metric` select the norm-trick fast path; does no
    /// per-pair work.
    pub fn new(points: &'a crate::Matrix, metric: Metric, policy: KernelPolicy) -> Self {
        let squared = matches!(metric, Metric::SquaredEuclidean);
        let trick = matches!(policy, KernelPolicy::Blocked)
            && matches!(metric, Metric::Euclidean | Metric::SquaredEuclidean);
        let norms = trick.then(|| {
            let mut norms = vec![0.0; points.nrows()];
            kernels::row_sq_norms_into(points, &mut norms);
            norms
        });
        TiledDistances {
            points,
            metric,
            norms,
            squared,
        }
    }

    /// The number of points (rows).
    pub fn len(&self) -> usize {
        self.points.nrows()
    }

    /// `true` when the provider holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.nrows() == 0
    }

    /// Fills `out[j] = d(i, j)` for `j in 0..out.len()` — a prefix strip of
    /// row `i` of the pairwise matrix. `out` may be any length up to `n`,
    /// so O(n)-memory consumers can request exactly the prefix they need.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `i` is out of range or
    /// `out` is longer than the point count, and propagates
    /// [`Metric::distance`] errors on the fallback path.
    pub fn fill_row(&self, i: usize, out: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.points.nrows();
        if i >= n || out.len() > n {
            return Err(LinalgError::ShapeMismatch {
                left: (i, out.len()),
                right: (n, n),
                op: "tiled distance row",
            });
        }
        let ri = self.points.row(i);
        if let Some(norms) = &self.norms {
            for (j, slot) in out.iter_mut().enumerate() {
                let d2 = if i == j {
                    0.0
                } else {
                    (norms[i] + norms[j] - 2.0 * kernels::dot_fast(ri, self.points.row(j))).max(0.0)
                };
                *slot = if self.squared { d2 } else { d2.sqrt() };
            }
        } else {
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = if i == j {
                    0.0
                } else {
                    self.metric.distance(ri, self.points.row(j))?
                };
            }
        }
        Ok(())
    }
}

/// The single-threaded reference implementation of [`pairwise`].
///
/// Kept public so property tests and benchmarks can compare the parallel
/// path against it; [`pairwise`] is guaranteed to produce identical bits.
///
/// # Errors
///
/// Propagates errors from [`Metric::distance`].
pub fn pairwise_serial(
    points: &crate::Matrix,
    metric: Metric,
) -> Result<crate::Matrix, LinalgError> {
    let n = points.nrows();
    let mut d = crate::Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = metric.distance(points.row(i), points.row(j))?;
            d[(i, j)] = v;
            d[(j, i)] = v;
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_known() {
        // (3, 4, 0) -> 5
        assert!((Metric::Euclidean.distance(&A, &B).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn squared_euclidean_is_square() {
        let d = Metric::Euclidean.distance(&A, &B).unwrap();
        let d2 = Metric::SquaredEuclidean.distance(&A, &B).unwrap();
        assert!((d * d - d2).abs() < 1e-12);
    }

    #[test]
    fn manhattan_known() {
        assert_eq!(Metric::Manhattan.distance(&A, &B).unwrap(), 7.0);
    }

    #[test]
    fn chebyshev_known() {
        assert_eq!(Metric::Chebyshev.distance(&A, &B).unwrap(), 4.0);
    }

    #[test]
    fn minkowski_extremes_match() {
        // p = 1 is Manhattan, p = 2 is Euclidean.
        let m1 = Metric::Minkowski(1.0).distance(&A, &B).unwrap();
        let m2 = Metric::Minkowski(2.0).distance(&A, &B).unwrap();
        assert!((m1 - 7.0).abs() < 1e-12);
        assert!((m2 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_rejects_bad_p() {
        assert!(Metric::Minkowski(0.5).distance(&A, &B).is_err());
        assert!(Metric::Minkowski(f64::NAN).distance(&A, &B).is_err());
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        let d0 = Metric::Cosine.distance(&[1.0, 0.0], &[2.0, 0.0]).unwrap();
        let d1 = Metric::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!(d0.abs() < 1e-12);
        assert!((d1 - 1.0).abs() < 1e-12);
        // Zero vector convention.
        assert_eq!(Metric::Cosine.distance(&[0.0], &[1.0]).unwrap(), 1.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn identity_of_indiscernibles() {
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::SquaredEuclidean,
        ] {
            assert_eq!(m.distance(&A, &A).unwrap(), 0.0);
        }
    }

    #[test]
    fn pairwise_symmetric_zero_diagonal() {
        let pts = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]]).unwrap();
        let d = pairwise(&pts, Metric::Euclidean).unwrap();
        assert_eq!(d.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..3 {
                assert_eq!(d[(i, j)], d[(j, i)]);
            }
        }
        assert!((d[(0, 1)] - 5.0).abs() < 1e-12);
        assert!((d[(0, 2)] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_euclidean() {
        assert_eq!(Metric::default(), Metric::Euclidean);
    }

    /// A deterministic pseudo-random matrix big enough to cross the
    /// parallelism threshold in [`PAIRWISE_CHUNKING`].
    fn big_matrix(n: usize, d: usize) -> Matrix {
        let mut state = 0x9E37_79B9u64;
        let data: Vec<f64> = (0..n * d)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        Matrix::from_vec(n, d, data).unwrap()
    }

    #[test]
    fn parallel_pairwise_matches_serial_bitwise() {
        // Force several workers so the threaded path runs even on a
        // single-core machine (where pairwise would dispatch serially).
        crate::parallel::set_worker_override(Some(4));
        let pts = big_matrix(97, 6);
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Cosine] {
            let par = pairwise(&pts, metric).unwrap();
            let ser = pairwise_serial(&pts, metric).unwrap();
            assert_eq!(par, ser, "{metric:?}");
        }
        crate::parallel::set_worker_override(None);
    }

    #[test]
    fn blocked_pairwise_exact_on_integer_coordinates() {
        // SOM map positions are small integer grid coordinates: every norm
        // and dot is exactly representable, so the norm trick loses nothing
        // and the blocked path must match the scalar path bit for bit.
        let mut rows = Vec::new();
        for x in 0..12 {
            for y in 0..11 {
                rows.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        let pts = Matrix::from_rows(&rows).unwrap();
        for metric in [Metric::Euclidean, Metric::SquaredEuclidean] {
            let blocked = pairwise_with_policy(&pts, metric, KernelPolicy::Blocked).unwrap();
            let scalar = pairwise(&pts, metric).unwrap();
            assert_eq!(blocked, scalar, "{metric:?}");
        }
    }

    #[test]
    fn blocked_pairwise_within_ulp_band_on_real_data() {
        let pts = big_matrix(70, 9);
        let blocked =
            pairwise_with_policy(&pts, Metric::SquaredEuclidean, KernelPolicy::Blocked).unwrap();
        let scalar = pairwise(&pts, Metric::SquaredEuclidean).unwrap();
        let mut norms = vec![0.0; 70];
        crate::kernels::row_sq_norms_into(&pts, &mut norms);
        for i in 0..70 {
            for j in 0..70 {
                let band = crate::kernels::candidate_band(9, norms[i], norms[j]);
                assert!(
                    (blocked[(i, j)] - scalar[(i, j)]).abs() <= band,
                    "({i},{j}): {} vs {}",
                    blocked[(i, j)],
                    scalar[(i, j)]
                );
            }
        }
    }

    #[test]
    fn blocked_pairwise_worker_count_invariant() {
        let pts = big_matrix(80, 5);
        crate::parallel::set_worker_override(Some(4));
        let par = pairwise_with_policy(&pts, Metric::Euclidean, KernelPolicy::Blocked).unwrap();
        crate::parallel::set_worker_override(Some(1));
        let ser = pairwise_with_policy(&pts, Metric::Euclidean, KernelPolicy::Blocked).unwrap();
        crate::parallel::set_worker_override(None);
        assert_eq!(par, ser);
    }

    #[test]
    fn scalar_policy_and_foreign_metric_fall_back() {
        let pts = big_matrix(20, 4);
        let scalar = pairwise_with_policy(&pts, Metric::Euclidean, KernelPolicy::Scalar).unwrap();
        assert_eq!(scalar, pairwise(&pts, Metric::Euclidean).unwrap());
        let manhattan =
            pairwise_with_policy(&pts, Metric::Manhattan, KernelPolicy::Blocked).unwrap();
        assert_eq!(manhattan, pairwise(&pts, Metric::Manhattan).unwrap());
    }

    #[test]
    fn lanes_record_same_structure_for_any_worker_count_and_identical_bits() {
        // n = 13 is below the parallelism threshold: lane recording must
        // still produce the chunked structure (2 chunks of 8) and identical
        // distance bits, whether the serial fallback or real workers ran.
        let pts = big_matrix(13, 4);
        let clock = hiermeans_obs::Collector::enabled()
            .lane_clock()
            .expect("enabled collector has a lane clock");
        let serial = pairwise_serial(&pts, Metric::Euclidean).unwrap();
        let mut structures = Vec::new();
        for workers in [Some(1), Some(4), None] {
            crate::parallel::set_worker_override(workers);
            let mut buf = crate::parallel::LaneBuf::new();
            let d = pairwise_lanes(&pts, Metric::Euclidean, Some((clock, &mut buf))).unwrap();
            assert_eq!(d, serial, "workers = {workers:?}");
            let mut chunks: Vec<u32> = buf.intervals().iter().map(|iv| iv.chunk).collect();
            chunks.sort_unstable();
            structures.push((buf.runs(), chunks));
        }
        crate::parallel::set_worker_override(None);
        assert_eq!(structures[0], (1, vec![0, 1]));
        assert!(structures.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn policy_lanes_share_the_chunk_structure() {
        let pts = big_matrix(70, 5);
        let clock = hiermeans_obs::Collector::enabled()
            .lane_clock()
            .expect("enabled collector has a lane clock");
        let mut blocked_buf = crate::parallel::LaneBuf::new();
        let mut scalar_buf = crate::parallel::LaneBuf::new();
        let blocked = pairwise_with_policy_lanes(
            &pts,
            Metric::Euclidean,
            KernelPolicy::Blocked,
            Some((clock, &mut blocked_buf)),
        )
        .unwrap();
        let scalar = pairwise_with_policy_lanes(
            &pts,
            Metric::Euclidean,
            KernelPolicy::Scalar,
            Some((clock, &mut scalar_buf)),
        )
        .unwrap();
        assert_eq!(blocked.shape(), scalar.shape());
        let chunks = |buf: &crate::parallel::LaneBuf| {
            let mut c: Vec<u32> = buf.intervals().iter().map(|iv| iv.chunk).collect();
            c.sort_unstable();
            c
        };
        assert_eq!(chunks(&blocked_buf), chunks(&scalar_buf));
        assert_eq!(chunks(&blocked_buf), (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn tiled_rows_match_dense_bitwise_under_both_policies() {
        let pts = big_matrix(60, 7);
        for metric in [
            Metric::Euclidean,
            Metric::SquaredEuclidean,
            Metric::Manhattan,
        ] {
            for policy in [KernelPolicy::Scalar, KernelPolicy::Blocked] {
                let dense = pairwise_with_policy(&pts, metric, policy).unwrap();
                let tiled = TiledDistances::new(&pts, metric, policy);
                let mut row = vec![0.0; 60];
                for i in 0..60 {
                    tiled.fill_row(i, &mut row).unwrap();
                    for j in 0..60 {
                        assert_eq!(
                            row[j].to_bits(),
                            dense[(i, j)].to_bits(),
                            "{metric:?}/{policy:?} ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_prefix_strips_work() {
        let pts = big_matrix(20, 3);
        let tiled = TiledDistances::new(&pts, Metric::Euclidean, KernelPolicy::Blocked);
        assert_eq!(tiled.len(), 20);
        assert!(!tiled.is_empty());
        let dense = pairwise_with_policy(&pts, Metric::Euclidean, KernelPolicy::Blocked).unwrap();
        // SLINK-style consumption: row i's strict prefix only.
        for i in 1..20 {
            let mut strip = vec![0.0; i];
            tiled.fill_row(i, &mut strip).unwrap();
            for (j, v) in strip.iter().enumerate() {
                assert_eq!(v.to_bits(), dense[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn tiled_rejects_bad_shapes_and_bad_metrics() {
        let pts = big_matrix(5, 2);
        let tiled = TiledDistances::new(&pts, Metric::Euclidean, KernelPolicy::Blocked);
        let mut too_long = vec![0.0; 6];
        assert!(tiled.fill_row(0, &mut too_long).is_err());
        assert!(tiled.fill_row(5, &mut [0.0; 2]).is_err());
        let bad = TiledDistances::new(&pts, Metric::Minkowski(0.5), KernelPolicy::Blocked);
        assert!(bad.fill_row(0, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn parallel_pairwise_propagates_errors() {
        // Large enough that the parallel path runs; the worker error must
        // surface as an Err, not a panic.
        crate::parallel::set_worker_override(Some(4));
        let pts = big_matrix(96, 3);
        let result = pairwise(&pts, Metric::Minkowski(0.5));
        crate::parallel::set_worker_override(None);
        assert!(result.is_err());
    }
}
