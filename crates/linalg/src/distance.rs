//! Point-to-point distance metrics.
//!
//! The paper uses the Euclidean distance both for the SOM's best-matching-unit
//! search and as the point-to-point distance underneath the clustering linkage
//! (Section III-B). The other metrics are provided for ablation studies.

use serde::{Deserialize, Serialize};

use crate::LinalgError;

/// A point-to-point distance metric over `f64` vectors.
///
/// # Example
///
/// ```
/// use hiermeans_linalg::distance::Metric;
///
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let d = Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0])?;
/// assert_eq!(d, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Metric {
    /// The L2 distance — the paper's choice.
    Euclidean,
    /// The squared L2 distance (avoids the square root; not a metric but
    /// order-equivalent to [`Metric::Euclidean`]).
    SquaredEuclidean,
    /// The L1 (city-block) distance.
    Manhattan,
    /// The L∞ distance.
    Chebyshev,
    /// The general Lp distance for `p >= 1`.
    Minkowski(f64),
    /// Cosine distance `1 - cos(a, b)`; 0 for identical directions.
    Cosine,
}

impl Metric {
    /// Computes the distance between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the vectors have different
    /// lengths, and [`LinalgError::InvalidParameter`] for
    /// [`Metric::Minkowski`] with `p < 1`.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
        if a.len() != b.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (a.len(), 1),
                right: (b.len(), 1),
                op: "distance",
            });
        }
        match self {
            Metric::Euclidean => Ok(sq_euclid(a, b).sqrt()),
            Metric::SquaredEuclidean => Ok(sq_euclid(a, b)),
            Metric::Manhattan => Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()),
            Metric::Chebyshev => Ok(a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)),
            Metric::Minkowski(p) => {
                if *p < 1.0 || !p.is_finite() {
                    return Err(LinalgError::InvalidParameter {
                        name: "p",
                        reason: "Minkowski order must be finite and >= 1",
                    });
                }
                Ok(a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y).abs().powf(*p))
                    .sum::<f64>()
                    .powf(1.0 / p))
            }
            Metric::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    // By convention the distance from the zero vector is 1
                    // (maximally dissimilar direction-wise).
                    return Ok(1.0);
                }
                Ok((1.0 - dot / (na * nb)).max(0.0))
            }
        }
    }
}

impl Default for Metric {
    /// Euclidean distance, the paper's configuration.
    fn default() -> Self {
        Metric::Euclidean
    }
}

fn sq_euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Computes the full pairwise distance matrix between the rows of `points`.
///
/// The result is a symmetric `n x n` [`crate::Matrix`] with zero diagonal.
///
/// # Errors
///
/// Propagates errors from [`Metric::distance`].
pub fn pairwise(points: &crate::Matrix, metric: Metric) -> Result<crate::Matrix, LinalgError> {
    let n = points.nrows();
    let mut d = crate::Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = metric.distance(points.row(i), points.row(j))?;
            d[(i, j)] = v;
            d[(j, i)] = v;
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_known() {
        // (3, 4, 0) -> 5
        assert!((Metric::Euclidean.distance(&A, &B).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn squared_euclidean_is_square() {
        let d = Metric::Euclidean.distance(&A, &B).unwrap();
        let d2 = Metric::SquaredEuclidean.distance(&A, &B).unwrap();
        assert!((d * d - d2).abs() < 1e-12);
    }

    #[test]
    fn manhattan_known() {
        assert_eq!(Metric::Manhattan.distance(&A, &B).unwrap(), 7.0);
    }

    #[test]
    fn chebyshev_known() {
        assert_eq!(Metric::Chebyshev.distance(&A, &B).unwrap(), 4.0);
    }

    #[test]
    fn minkowski_extremes_match() {
        // p = 1 is Manhattan, p = 2 is Euclidean.
        let m1 = Metric::Minkowski(1.0).distance(&A, &B).unwrap();
        let m2 = Metric::Minkowski(2.0).distance(&A, &B).unwrap();
        assert!((m1 - 7.0).abs() < 1e-12);
        assert!((m2 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_rejects_bad_p() {
        assert!(Metric::Minkowski(0.5).distance(&A, &B).is_err());
        assert!(Metric::Minkowski(f64::NAN).distance(&A, &B).is_err());
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        let d0 = Metric::Cosine.distance(&[1.0, 0.0], &[2.0, 0.0]).unwrap();
        let d1 = Metric::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!(d0.abs() < 1e-12);
        assert!((d1 - 1.0).abs() < 1e-12);
        // Zero vector convention.
        assert_eq!(Metric::Cosine.distance(&[0.0], &[1.0]).unwrap(), 1.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn identity_of_indiscernibles() {
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::SquaredEuclidean,
        ] {
            assert_eq!(m.distance(&A, &A).unwrap(), 0.0);
        }
    }

    #[test]
    fn pairwise_symmetric_zero_diagonal() {
        let pts = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]]).unwrap();
        let d = pairwise(&pts, Metric::Euclidean).unwrap();
        assert_eq!(d.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..3 {
                assert_eq!(d[(i, j)], d[(j, i)]);
            }
        }
        assert!((d[(0, 1)] - 5.0).abs() < 1e-12);
        assert!((d[(0, 2)] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_euclidean() {
        assert_eq!(Metric::default(), Metric::Euclidean);
    }
}
