//! Descriptive statistics over `f64` slices.

use crate::LinalgError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// assert_eq!(hiermeans_linalg::stats::mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(xs: &[f64]) -> Result<f64, LinalgError> {
    if xs.is_empty() {
        return Err(LinalgError::Empty { what: "mean input" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance with the unbiased `n - 1` denominator.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidParameter`] for fewer than two values.
pub fn variance(xs: &[f64]) -> Result<f64, LinalgError> {
    if xs.len() < 2 {
        return Err(LinalgError::InvalidParameter {
            name: "xs",
            reason: "variance requires at least two values",
        });
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population variance with the `n` denominator.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn population_variance(xs: &[f64]) -> Result<f64, LinalgError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Same as [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64, LinalgError> {
    Ok(variance(xs)?.sqrt())
}

/// Median (average of the two middle values for even lengths).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice and
/// [`LinalgError::NonFinite`] if any value is NaN.
pub fn median(xs: &[f64]) -> Result<f64, LinalgError> {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice,
/// [`LinalgError::NonFinite`] if any value is NaN, and
/// [`LinalgError::InvalidParameter`] for `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64, LinalgError> {
    if xs.is_empty() {
        return Err(LinalgError::Empty {
            what: "percentile input",
        });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(LinalgError::InvalidParameter {
            name: "p",
            reason: "percentile must be in [0, 100]",
        });
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(LinalgError::NonFinite {
            what: "percentile input",
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] for different lengths,
/// [`LinalgError::InvalidParameter`] for fewer than two values, and
/// [`LinalgError::InvalidParameter`] if either sample is constant.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Result<f64, LinalgError> {
    if xs.len() != ys.len() {
        return Err(LinalgError::ShapeMismatch {
            left: (xs.len(), 1),
            right: (ys.len(), 1),
            op: "correlation",
        });
    }
    if xs.len() < 2 {
        return Err(LinalgError::InvalidParameter {
            name: "xs",
            reason: "correlation requires at least two values",
        });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(LinalgError::InvalidParameter {
            name: "xs",
            reason: "correlation is undefined for a constant sample",
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Covariance between two equal-length samples (unbiased denominator).
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] for different lengths and
/// [`LinalgError::InvalidParameter`] for fewer than two values.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64, LinalgError> {
    if xs.len() != ys.len() {
        return Err(LinalgError::ShapeMismatch {
            left: (xs.len(), 1),
            right: (ys.len(), 1),
            op: "covariance",
        });
    }
    if xs.len() < 2 {
        return Err(LinalgError::InvalidParameter {
            name: "xs",
            reason: "covariance requires at least two values",
        });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let s: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Ok(s / (xs.len() - 1) as f64)
}

/// The Pearson correlation matrix of a data matrix's columns (rows are
/// observations). Constant columns get zero correlation with everything
/// (and 1.0 with themselves).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidParameter`] for fewer than two rows.
pub fn correlation_matrix(data: &crate::Matrix) -> Result<crate::Matrix, LinalgError> {
    if data.nrows() < 2 {
        return Err(LinalgError::InvalidParameter {
            name: "data",
            reason: "correlation requires at least two observations",
        });
    }
    let p = data.ncols();
    let cols: Vec<Vec<f64>> = (0..p).map(|c| data.col(c)).collect();
    let mut out = crate::Matrix::identity(p);
    for i in 0..p {
        for j in (i + 1)..p {
            let r = correlation(&cols[i], &cols[j]).unwrap_or(0.0);
            out[(i, j)] = r;
            out[(j, i)] = r;
        }
    }
    Ok(out)
}

/// Minimum and maximum of a slice.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64), LinalgError> {
    if xs.is_empty() {
        return Err(LinalgError::Empty {
            what: "min_max input",
        });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_known() {
        assert_eq!(mean(&[2.0, 4.0, 9.0]).unwrap(), 5.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_known() {
        // Sample variance of [1, 2, 3, 4] is 5/3.
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn population_vs_sample_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let pv = population_variance(&xs).unwrap();
        let sv = variance(&xs).unwrap();
        assert!((pv * 4.0 - sv * 3.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let xs = [1.0, 5.0, 9.0];
        assert!((std_dev(&xs).unwrap().powi(2) - variance(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn percentile_bounds() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 30.0);
        assert_eq!(percentile(&xs, 50.0).unwrap(), 20.0);
        assert!(percentile(&xs, 101.0).is_err());
        assert!(percentile(&[f64::NAN], 50.0).is_err());
    }

    #[test]
    fn correlation_perfect() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((correlation(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_constant_rejected() {
        assert!(correlation(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(correlation(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn covariance_matches_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((covariance(&xs, &xs).unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn correlation_matrix_known() {
        use crate::Matrix;
        // Column 1 = 2 * column 0 (r = 1); column 2 anti-correlates.
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 2.0],
            vec![3.0, 6.0, 1.0],
        ])
        .unwrap();
        let r = correlation_matrix(&m).unwrap();
        assert_eq!(r.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(r[(i, i)], 1.0);
        }
        assert!((r[(0, 1)] - 1.0).abs() < 1e-12);
        assert!((r[(0, 2)] + 1.0).abs() < 1e-12);
        assert_eq!(r[(1, 0)], r[(0, 1)]);
    }

    #[test]
    fn correlation_matrix_constant_column_zeroed() {
        use crate::Matrix;
        let m = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]).unwrap();
        let r = correlation_matrix(&m).unwrap();
        assert_eq!(r[(0, 1)], 0.0);
        assert_eq!(r[(1, 1)], 1.0);
        // Single row rejected.
        let one = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(correlation_matrix(&one).is_err());
    }

    #[test]
    fn min_max_known() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]).unwrap(), (-1.0, 3.0));
        assert!(min_max(&[]).is_err());
    }
}
