//! Blocked compute kernels for the workspace's dense hot paths.
//!
//! Every distance- and product-shaped inner loop in the pipeline — the SOM's
//! best-matching-unit search, the clustering stage's pairwise matrix, and the
//! covariance/Gram products behind PCA — bottoms out in one of three kernels
//! here:
//!
//! * [`matmul`] — a register-blocked matrix product that folds eight `k`
//!   contributions into the output row per bounds-check-free column sweep,
//!   while accumulating every output cell **in ascending-`k` order**. The
//!   summation order is exactly the one the naive triple loop used, so
//!   results are bitwise identical to [`matmul_reference`] on finite
//!   inputs, on every machine.
//! * [`syrk_rows`] — the symmetric rank-k product `MᵀM` streamed over the
//!   rows of `M`, used by covariance and the dual-PCA Gram matrix. Also
//!   ascending-order exact.
//! * [`sq_dists_into`] / [`refine_best_two`] — batched squared Euclidean
//!   distances via the norm trick `‖x‖² + ‖w‖² − 2·x·w` with precomputed row
//!   norms and unrolled dot products. The trick reorders
//!   floating-point operations, so trick distances agree with the scalar
//!   formula only to ULP tolerance; argmin consumers (BMU search) therefore
//!   run a **scalar refinement pass** over the candidates inside a
//!   conservative error band ([`candidate_band`]), which restores *exact*
//!   agreement with a scalar scan — same unit indices, same distance bits.
//!
//! [`KernelPolicy`] selects between the scalar reference path and the
//! blocked path for the distance kernels; the default is
//! [`KernelPolicy::Blocked`]. The matrix-product kernels need no policy:
//! they are bit-for-bit interchangeable with the loops they replaced.

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// AVX-512 micro-kernels behind [`matmul`] and [`trick_dists_wt_into`].
///
/// Every kernel applies, per output cell, exactly the scalar ascending-`k`
/// multiply-then-add chain — separate rounding for every multiply and every
/// add, never FMA contraction, never reassociation — so results are bitwise
/// identical to the portable loops on every machine; only throughput
/// differs. The speed comes from *register blocking*: each kernel pins a
/// row-block of output accumulators in zmm registers across the whole
/// shared dimension, so the output is read and written once and each
/// right-hand-side panel load is shared across the row block.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::needless_range_loop)] // index loops mirror fixed-size register arrays
mod x86 {
    use std::arch::x86_64::*;

    use crate::Matrix;

    /// Whether the AVX-512 foundation subset is available. The detection
    /// macro caches the CPUID result process-wide.
    pub(super) fn available() -> bool {
        is_x86_feature_detected!("avx512f")
    }

    /// The tail-lane mask for a strip of `w` columns (`w % 8` low bits).
    fn tail_mask(w: usize) -> __mmask8 {
        ((1u16 << (w % 8)) - 1) as __mmask8
    }

    /// Generates one register-tile matmul kernel: `$nt` zmm accumulators
    /// (up to 64 output columns) held in registers across the whole
    /// ascending-`k` loop, for `$rb` rows of `a` at a time so each `b`
    /// panel load is reused `$rb` times. The `$nt`-th tile may be masked to
    /// the strip's tail lanes; masked lanes are neither read nor written.
    macro_rules! strip_kernel {
        ($name:ident, $rb:expr, $nt:expr) => {
            #[target_feature(enable = "avx512f")]
            unsafe fn $name(
                a: &Matrix,
                b: &Matrix,
                out: &mut Matrix,
                j0: usize,
                w: usize,
                tailmask: __mmask8,
            ) {
                const RB: usize = $rb;
                const NT: usize = $nt;
                let (m, kk) = a.shape();
                let full = w / 8;
                macro_rules! load_tile {
                    ($row:expr, $t:expr) => {
                        if $t < full {
                            _mm512_loadu_pd($row.add(8 * $t))
                        } else {
                            _mm512_maskz_loadu_pd(tailmask, $row.add(8 * $t))
                        }
                    };
                }
                macro_rules! store_tile {
                    ($row:expr, $t:expr, $v:expr) => {
                        if $t < full {
                            _mm512_storeu_pd($row.add(8 * $t), $v);
                        } else {
                            _mm512_mask_storeu_pd($row.add(8 * $t), tailmask, $v);
                        }
                    };
                }
                let mut i = 0;
                while i + RB <= m {
                    let mut acc = [[_mm512_setzero_pd(); NT]; RB];
                    for k in 0..kk {
                        let brow = b.row(k).as_ptr().add(j0);
                        let mut bv = [_mm512_setzero_pd(); NT];
                        for t in 0..NT {
                            bv[t] = load_tile!(brow, t);
                        }
                        for r in 0..RB {
                            let avv = _mm512_set1_pd(*a.row(i + r).get_unchecked(k));
                            for t in 0..NT {
                                acc[r][t] = _mm512_add_pd(acc[r][t], _mm512_mul_pd(avv, bv[t]));
                            }
                        }
                    }
                    for r in 0..RB {
                        let orow = out.row_mut(i + r).as_mut_ptr().add(j0);
                        for t in 0..NT {
                            store_tile!(orow, t, acc[r][t]);
                        }
                    }
                    i += RB;
                }
                while i < m {
                    let mut acc = [_mm512_setzero_pd(); NT];
                    for k in 0..kk {
                        let brow = b.row(k).as_ptr().add(j0);
                        let avv = _mm512_set1_pd(*a.row(i).get_unchecked(k));
                        for t in 0..NT {
                            acc[t] = _mm512_add_pd(acc[t], _mm512_mul_pd(avv, load_tile!(brow, t)));
                        }
                    }
                    let orow = out.row_mut(i).as_mut_ptr().add(j0);
                    for t in 0..NT {
                        store_tile!(orow, t, acc[t]);
                    }
                    i += 1;
                }
            }
        };
    }

    // Row-block depth per tile count: narrow strips afford deeper row
    // blocks (more b-load reuse) before running out of zmm registers.
    strip_kernel!(strip_1, 4, 1);
    strip_kernel!(strip_2, 4, 2);
    strip_kernel!(strip_3, 3, 3);
    strip_kernel!(strip_4, 3, 4);
    strip_kernel!(strip_5, 3, 5);
    strip_kernel!(strip_6, 3, 6);
    strip_kernel!(strip_7, 3, 7);
    strip_kernel!(strip_8, 3, 8);

    /// Register-tile matmul for any shape: output columns are processed in
    /// strips of at most 64, each strip's accumulators pinned in registers
    /// across the whole shared dimension (ascending `k`, exact chain).
    ///
    /// Callers must have verified [`available`] and that shapes agree.
    pub(super) fn matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let n = b.ncols();
        let mut j0 = 0;
        while j0 < n {
            let w = (n - j0).min(64);
            let nt = w.div_ceil(8);
            let mask = tail_mask(w);
            // SAFETY: avx512f was verified by the caller; every strip obeys
            // `j0 + w <= n`, full tiles stay inside the row, and the tail
            // tile's masked lanes are neither read nor written.
            unsafe {
                match nt {
                    1 => strip_1(a, b, out, j0, w, mask),
                    2 => strip_2(a, b, out, j0, w, mask),
                    3 => strip_3(a, b, out, j0, w, mask),
                    4 => strip_4(a, b, out, j0, w, mask),
                    5 => strip_5(a, b, out, j0, w, mask),
                    6 => strip_6(a, b, out, j0, w, mask),
                    7 => strip_7(a, b, out, j0, w, mask),
                    _ => strip_8(a, b, out, j0, w, mask),
                }
            }
            j0 += w;
        }
    }

    /// Norm-trick distances against a transposed codebook, for full
    /// 64-column strips: `out[u] = max(0, (xn + wn[u]) + Σ_d (−2·x[d])·wt[d][u])`
    /// accumulated in ascending `d` — the identical chain to the portable
    /// loop in [`super::trick_dists_wt_into`]. Handles `units - units % 64`
    /// columns; the caller finishes the tail with the portable loop.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn trick_dists_wt_strips(
        x: &[f64],
        xn: f64,
        wt: &Matrix,
        wn: &[f64],
        out: &mut [f64],
    ) -> usize {
        let units = wt.ncols();
        let dim = wt.nrows();
        let xnv = _mm512_set1_pd(xn);
        let zero = _mm512_setzero_pd();
        let mut j0 = 0;
        while j0 + 64 <= units {
            let wnp = wn.as_ptr().add(j0);
            let mut acc = [zero; 8];
            for t in 0..8 {
                acc[t] = _mm512_add_pd(xnv, _mm512_loadu_pd(wnp.add(8 * t)));
            }
            for d in 0..dim {
                let avv = _mm512_set1_pd(-2.0 * *x.get_unchecked(d));
                let wrow = wt.row(d).as_ptr().add(j0);
                for t in 0..8 {
                    acc[t] =
                        _mm512_add_pd(acc[t], _mm512_mul_pd(avv, _mm512_loadu_pd(wrow.add(8 * t))));
                }
            }
            let op = out.as_mut_ptr().add(j0);
            for t in 0..8 {
                _mm512_storeu_pd(op.add(8 * t), _mm512_max_pd(acc[t], zero));
            }
            j0 += 64;
        }
        j0
    }
}

/// Which implementation the distance-shaped hot paths use.
///
/// `Blocked` computes batched squared distances with the norm trick
/// (GEMM-backed, reassociated sums) and recovers exact scalar agreement for
/// argmin consumers via a refinement pass; `Scalar` runs the reference
/// per-pair loops. Outputs that feed determinism guarantees (BMU indices,
/// BMU distances, and therefore trained maps and trace fingerprints) are
/// identical under both policies; raw batched *distance values* agree to ULP
/// tolerance only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelPolicy {
    /// Reference per-pair scalar loops.
    Scalar,
    /// Cache-blocked, norm-trick kernels (the default).
    #[default]
    Blocked,
}

/// Output tile width for [`syrk_rows`]. A pair of `J_TILE`-wide row slices
/// plus the output tile stays L1-resident while all rows stream through.
const J_TILE: usize = 64;
/// How many `k` contributions [`matmul`] folds into the output row per
/// sweep. Each sweep applies them *sequentially in ascending `k`* per
/// output cell (bitwise identical to one-at-a-time sweeps) but reads and
/// writes the output row once instead of `K_UNROLL` times.
const K_UNROLL: usize = 8;

/// The naive triple-loop matrix product, kept as the scalar reference for
/// equivalence tests and the `BENCH_kernels.json` speedup baseline.
///
/// This is byte-for-byte the loop [`Matrix::matmul`] ran before the blocked
/// kernel existed (minus its skip of zero multiplicands, which only changed
/// results for non-finite inputs).
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "matmul",
        });
    }
    let mut out = Matrix::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for k in 0..a.ncols() {
            let av = a[(i, k)];
            for j in 0..b.ncols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    Ok(out)
}

/// Register-blocked matrix product `a * b`.
///
/// On x86-64 with AVX-512 this runs the register-tile kernel: output
/// columns in strips of at most 64 held entirely in zmm accumulators across
/// the whole shared dimension, with each `b` panel load shared across a
/// block of 3–4 output rows. Elsewhere it falls back to full-width
/// bounds-check-free column sweeps folding [`K_UNROLL`] (then four, then
/// one) `k` contributions per pass. Both paths apply the contributions for
/// each output cell *sequentially in ascending `k`* with a separate
/// rounding for every multiply and add — exactly the association the naive
/// loop uses — so the result is bitwise identical to [`matmul_reference`]
/// for finite inputs regardless of dispatch, unroll factors, or hardware.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "matmul",
        });
    }
    let mut out = Matrix::zeros(a.nrows(), b.ncols());
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        x86::matmul(a, b, &mut out);
        return Ok(out);
    }
    matmul_sweeps(a, b, &mut out);
    Ok(out)
}

/// Portable fallback for [`matmul`]: per-row ascending-`k` column sweeps,
/// eight (then four, then one) contributions folded per pass.
fn matmul_sweeps(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, kk) = a.shape();
    let n = b.ncols();
    for i in 0..m {
        let arow = a.row(i);
        let orow = &mut out.row_mut(i)[..n];
        let mut k0 = 0;
        while k0 + K_UNROLL <= kk {
            let (a0, a1, a2, a3, a4, a5, a6, a7) = (
                arow[k0],
                arow[k0 + 1],
                arow[k0 + 2],
                arow[k0 + 3],
                arow[k0 + 4],
                arow[k0 + 5],
                arow[k0 + 6],
                arow[k0 + 7],
            );
            let b0 = &b.row(k0)[..n];
            let b1 = &b.row(k0 + 1)[..n];
            let b2 = &b.row(k0 + 2)[..n];
            let b3 = &b.row(k0 + 3)[..n];
            let b4 = &b.row(k0 + 4)[..n];
            let b5 = &b.row(k0 + 5)[..n];
            let b6 = &b.row(k0 + 6)[..n];
            let b7 = &b.row(k0 + 7)[..n];
            for j in 0..n {
                let mut t = orow[j] + a0 * b0[j];
                t += a1 * b1[j];
                t += a2 * b2[j];
                t += a3 * b3[j];
                t += a4 * b4[j];
                t += a5 * b5[j];
                t += a6 * b6[j];
                orow[j] = t + a7 * b7[j];
            }
            k0 += K_UNROLL;
        }
        if k0 + 4 <= kk {
            let (a0, a1, a2, a3) = (arow[k0], arow[k0 + 1], arow[k0 + 2], arow[k0 + 3]);
            let b0 = &b.row(k0)[..n];
            let b1 = &b.row(k0 + 1)[..n];
            let b2 = &b.row(k0 + 2)[..n];
            let b3 = &b.row(k0 + 3)[..n];
            for j in 0..n {
                let mut t = orow[j] + a0 * b0[j];
                t += a1 * b1[j];
                t += a2 * b2[j];
                orow[j] = t + a3 * b3[j];
            }
            k0 += 4;
        }
        for (k, &av) in arow.iter().enumerate().skip(k0) {
            let brow = &b.row(k)[..n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// The symmetric product `MᵀM` (an `ncols x ncols` matrix), streamed over
/// the rows of `m`: `out[i][j] = Σ_r m[r][i] · m[r][j]`.
///
/// Contributions arrive in ascending row order for every output cell —
/// identical association to the scalar accumulation loops this replaces in
/// [`Matrix::covariance`] — and only the upper triangle is computed before
/// mirroring.
pub fn syrk_rows(m: &Matrix) -> Matrix {
    let p = m.ncols();
    let mut out = Matrix::zeros(p, p);
    // Output tiles (i0.., j0..) in the upper triangle; each streams all rows
    // of `m` once with contiguous slice reads.
    let mut i0 = 0;
    while i0 < p {
        let i1 = (i0 + J_TILE).min(p);
        let mut j0 = i0;
        while j0 < p {
            let j1 = (j0 + J_TILE).min(p);
            for row in m.rows_iter() {
                let left = &row[i0..i1];
                let right = &row[j0..j1];
                for (di, &lv) in left.iter().enumerate() {
                    let i = i0 + di;
                    let orow = &mut out.row_mut(i)[j0.max(i)..j1];
                    let rstart = j0.max(i) - j0;
                    for (o, &rv) in orow.iter_mut().zip(&right[rstart..]) {
                        *o += lv * rv;
                    }
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
    // Mirror the strict upper triangle.
    for i in 0..p {
        for j in (i + 1)..p {
            out[(j, i)] = out[(i, j)];
        }
    }
    out
}

/// Squared L2 norm of `v` with fixed four-way unrolled accumulators.
///
/// The reassociation is deterministic (a pure function of the length), so
/// results are machine-independent, but they differ from a serial
/// left-to-right sum by ULPs — use only where the norm trick's tolerance
/// applies.
#[must_use]
pub fn sq_norm_fast(v: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = v.chunks_exact(4);
    for c in chunks.by_ref() {
        acc[0] += c[0] * c[0];
        acc[1] += c[1] * c[1];
        acc[2] += c[2] * c[2];
        acc[3] += c[3] * c[3];
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        tail += x * x;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Dot product with fixed four-way unrolled accumulators (deterministic
/// reassociation; ULP-tolerance only, like [`sq_norm_fast`]).
#[must_use]
pub fn dot_fast(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Writes the squared L2 norm of every row of `m` into `out`.
///
/// # Panics
///
/// Panics if `out.len() != m.nrows()`.
pub fn row_sq_norms_into(m: &Matrix, out: &mut [f64]) {
    assert_eq!(out.len(), m.nrows(), "row norm buffer length");
    for (o, row) in out.iter_mut().zip(m.rows_iter()) {
        *o = sq_norm_fast(row);
    }
}

/// The conservative absolute error band of a norm-trick squared distance
/// for vectors of dimension `dim` with squared norms `xn` and `wn`.
///
/// Covers both the trick's own rounding (three length-`dim` summations plus
/// the final combination) and the scalar formula's, with a ~4x safety
/// margin: any unit whose trick distance lies more than twice this band
/// above the running second-best provably cannot be the scalar best or
/// second-best.
#[must_use]
pub fn candidate_band(dim: usize, xn: f64, wn: f64) -> f64 {
    8.0 * (dim as f64 + 8.0) * f64::EPSILON * (xn + wn)
}

/// The conservative *relative* error factor of a scalar squared-Euclidean
/// distance evaluation in dimension `dim`.
///
/// A left-to-right scalar sum of `dim` non-negative terms carries at most
/// `dim` roundings, each bounded by `ε` relative to the running (monotone)
/// partial sum, so the true distance `D` and the computed distance `d`
/// satisfy `|d − D| ≤ ρ·D` with `ρ = distance_rel_err(dim)` — the `+8` and
/// `4x` factors mirror [`candidate_band`]'s safety margin. Warm-start BMU
/// caching uses `ρ` to widen cached distances into certified upper/lower
/// bounds on the *computed* (floating-point) distances a cold rescan would
/// produce: `d·(1+ρ)` is a safe upper bound and `d·(1−ρ)` a safe lower
/// bound for any other computed evaluation of the same true distance.
#[must_use]
pub fn distance_rel_err(dim: usize) -> f64 {
    4.0 * (dim as f64 + 8.0) * f64::EPSILON
}

/// Batched norm-trick squared distances from one vector `x` against every
/// row of `w`, written into `out`: `out[u] = xn + wn[u] − 2·x·w_u`.
///
/// Values can be a few ULPs off the scalar formula and are clamped at zero
/// (the trick can round slightly negative for near-identical vectors).
///
/// # Panics
///
/// Panics if buffer lengths disagree with `w`'s shape.
pub fn sq_dists_into(x: &[f64], xn: f64, w: &Matrix, wn: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), w.ncols(), "query dimension");
    assert_eq!(wn.len(), w.nrows(), "norm buffer length");
    assert_eq!(out.len(), w.nrows(), "distance buffer length");
    for (u, (o, row)) in out.iter_mut().zip(w.rows_iter()).enumerate() {
        let d = xn + wn[u] - 2.0 * dot_fast(x, row);
        *o = d.max(0.0);
    }
}

/// Batched norm-trick squared distances against a *transposed* codebook
/// `wt` (`dim x units`): `out[u] = max(0, (xn + wn[u]) + Σ_d (−2·x[d])·wt[d][u])`
/// with the sum accumulated in ascending `d`.
///
/// The column-major traversal turns the whole search into `dim` contiguous
/// streaming sweeps over `wt`'s rows, which the AVX-512 path runs 64 units
/// at a time with the accumulators held in registers. The ascending-`d`
/// chain is identical between the SIMD and portable paths, so the values
/// are machine-independent.
///
/// Error bound: each partial sum of `(−2·x[d])·wt[d][u]` is bounded by
/// `2·√(xn·wn[u]) ≤ xn + wn[u]` (Cauchy–Schwarz), so the accumulated
/// rounding error after `dim + 2` additions is below
/// `(dim + 2)·ε·2·(xn + wn[u])` — comfortably inside
/// [`candidate_band`]`(dim, xn, wn[u])`, making the band's refinement
/// contract hold for these distances exactly as for [`sq_dists_into`].
///
/// # Panics
///
/// Panics if buffer lengths disagree with `wt`'s shape (`x.len() !=
/// wt.nrows()` or `wn.len()`/`out.len() != wt.ncols()`).
pub fn trick_dists_wt_into(x: &[f64], xn: f64, wt: &Matrix, wn: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), wt.nrows(), "query dimension");
    assert_eq!(wn.len(), wt.ncols(), "norm buffer length");
    assert_eq!(out.len(), wt.ncols(), "distance buffer length");
    let units = wt.ncols();
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: shapes were asserted above; the kernel touches only full
        // 64-column strips and reports how many columns it covered.
        done = unsafe { x86::trick_dists_wt_strips(x, xn, wt, wn, out) };
    }
    if done == units {
        return;
    }
    let tail = done..units;
    for u in tail.clone() {
        out[u] = xn + wn[u];
    }
    for (d, &xd) in x.iter().enumerate() {
        let av = -2.0 * xd;
        let wrow = &wt.row(d)[tail.clone()];
        for (o, &wv) in out[tail.clone()].iter_mut().zip(wrow) {
            *o += av * wv;
        }
    }
    for u in tail {
        out[u] = out[u].max(0.0);
    }
}

/// The exact best-two search result: `((best, best_distance), (second,
/// second_distance))`, with ties broken toward the lowest unit index —
/// the same contract as a full ascending scalar scan.
pub type BestTwoExact = ((usize, f64), (usize, f64));

/// Scalar refinement pass: runs the reference best-two update logic over
/// `candidates` (ascending indices into `w`'s rows) using `distance`, which
/// must be the *scalar* metric evaluation. When `candidates` contains every
/// index a full scan could have selected, the result is bitwise identical
/// to that full scan.
///
/// # Errors
///
/// Propagates errors from `distance`.
pub fn refine_best_two<E>(
    x: &[f64],
    w: &Matrix,
    candidates: impl IntoIterator<Item = usize>,
    mut distance: impl FnMut(&[f64], &[f64]) -> Result<f64, E>,
) -> Result<BestTwoExact, E> {
    let mut best = (0usize, f64::INFINITY);
    let mut second = (0usize, f64::INFINITY);
    for u in candidates {
        let d = distance(x, w.row(u))?;
        if d < best.1 {
            second = best;
            best = (u, d);
        } else if d < second.1 {
            second = (u, d);
        }
    }
    Ok((best, second))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn blocked_matmul_matches_reference_bitwise() {
        // Shapes straddling the tile boundaries, including non-multiples.
        for (m, k, n) in [(3, 5, 4), (64, 64, 64), (65, 130, 67), (1, 200, 1)] {
            let a = pseudo_matrix(m, k, 7);
            let b = pseudo_matrix(k, n, 13);
            let blocked = matmul(&a, &b).unwrap();
            let reference = matmul_reference(&a, &b).unwrap();
            assert_eq!(blocked, reference, "{m}x{k} * {k}x{n}");
        }
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = pseudo_matrix(2, 3, 1);
        let b = pseudo_matrix(4, 2, 2);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_reference(&a, &b).is_err());
    }

    #[test]
    fn syrk_matches_explicit_product_bitwise() {
        for (r, c) in [(5, 3), (100, 70), (13, 200)] {
            let m = pseudo_matrix(r, c, 23);
            let s = syrk_rows(&m);
            // Reference: out[i][j] = sum_r m[r][i] * m[r][j], ascending r —
            // the association the covariance loop used.
            for i in 0..c {
                for j in i..c {
                    let mut acc = 0.0;
                    for row in m.rows_iter() {
                        acc += row[i] * row[j];
                    }
                    assert_eq!(s[(i, j)], acc, "({i},{j}) of {r}x{c}");
                    assert_eq!(s[(j, i)], acc);
                }
            }
        }
    }

    #[test]
    fn norm_trick_within_band_of_scalar() {
        let w = pseudo_matrix(40, 37, 99);
        let x: Vec<f64> = pseudo_matrix(1, 37, 5).into_vec();
        let xn = sq_norm_fast(&x);
        let mut wn = vec![0.0; 40];
        row_sq_norms_into(&w, &mut wn);
        let mut d2 = vec![0.0; 40];
        sq_dists_into(&x, xn, &w, &wn, &mut d2);
        for (u, &trick) in d2.iter().enumerate() {
            let scalar: f64 = x.iter().zip(w.row(u)).map(|(a, b)| (a - b) * (a - b)).sum();
            let band = candidate_band(37, xn, wn[u]);
            assert!(
                (trick - scalar).abs() <= band,
                "unit {u}: trick {trick} vs scalar {scalar}, band {band}"
            );
        }
    }

    #[test]
    fn transposed_trick_matches_chain_bitwise_and_scalar_within_band() {
        // 131 units exercises two full 64-column SIMD strips plus a
        // 3-column portable tail; 13 dims exercises the ascending-d chain.
        let (units, dim) = (131, 13);
        let w = pseudo_matrix(units, dim, 42);
        let wt = w.transpose();
        let x: Vec<f64> = pseudo_matrix(1, dim, 77).into_vec();
        let xn = sq_norm_fast(&x);
        let mut wn = vec![0.0; units];
        row_sq_norms_into(&w, &mut wn);
        let mut trick = vec![0.0; units];
        trick_dists_wt_into(&x, xn, &wt, &wn, &mut trick);
        for u in 0..units {
            // The documented chain, written out scalar: bitwise equality
            // holds on every dispatch path because both apply the same
            // ascending-d mul-then-add sequence per unit.
            let mut chain = xn + wn[u];
            for (d, &xd) in x.iter().enumerate() {
                chain += (-2.0 * xd) * wt[(d, u)];
            }
            chain = chain.max(0.0);
            assert_eq!(trick[u].to_bits(), chain.to_bits(), "unit {u}");
            let scalar: f64 = x.iter().zip(w.row(u)).map(|(a, b)| (a - b) * (a - b)).sum();
            let band = candidate_band(dim, xn, wn[u]);
            assert!(
                (trick[u] - scalar).abs() <= band,
                "unit {u}: trick {} vs scalar {scalar}, band {band}",
                trick[u]
            );
        }
    }

    #[test]
    fn refine_matches_full_scan() {
        let w = pseudo_matrix(25, 8, 3);
        let x: Vec<f64> = pseudo_matrix(1, 8, 11).into_vec();
        let dist = |a: &[f64], b: &[f64]| {
            Ok::<_, ()>(
                a.iter()
                    .zip(b)
                    .map(|(p, q)| (p - q) * (p - q))
                    .sum::<f64>()
                    .sqrt(),
            )
        };
        let full = refine_best_two(&x, &w, 0..25, dist).unwrap();
        // Candidate superset containing the winners gives the same answer.
        let subset = refine_best_two(&x, &w, (0..25).filter(|&u| u != 24), dist).unwrap();
        if full.0 .0 != 24 && full.1 .0 != 24 {
            assert_eq!(full, subset);
        }
    }

    #[test]
    fn policy_default_is_blocked() {
        assert_eq!(KernelPolicy::default(), KernelPolicy::Blocked);
    }

    #[test]
    fn fast_reductions_match_serial_closely() {
        let v: Vec<f64> = (0..101).map(|i| (i as f64).sin()).collect();
        let serial: f64 = v.iter().map(|x| x * x).sum();
        assert!((sq_norm_fast(&v) - serial).abs() <= 1e-12 * serial.abs());
        let w: Vec<f64> = (0..101).map(|i| (i as f64).cos()).collect();
        let sdot: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert!((dot_fast(&v, &w) - sdot).abs() <= 1e-12 * (1.0 + sdot.abs()));
    }
}
