//! Stage-boundary input guards: typed diagnostics for degenerate matrices.
//!
//! The pipeline's conclusions are only trustworthy if a single bad input
//! cell cannot silently poison them. This module diagnoses the degeneracies
//! that realistic characterization data produces — a NaN in one SAR
//! counter, an all-constant feature, duplicated workload rows, an empty
//! matrix — **with coordinates**, so the failure names the exact cell
//! instead of surfacing as a distant `NonFinite` somewhere downstream.
//!
//! Two consumption modes:
//!
//! * **Strict** ([`ensure_valid`]) — fatal issues (non-finite cells, empty
//!   input) become a typed [`LinalgError::InvalidData`] carrying the full
//!   [`ValidationReport`].
//! * **Lenient** ([`repair`]) — rows containing non-finite cells and
//!   zero-variance columns are dropped, and the [`Repair`] records exactly
//!   what was removed so the caller can report it. Duplicate rows are
//!   *diagnosed but never dropped*: redundant workloads are precisely what
//!   the paper's cluster analysis exists to find, so deduplicating here
//!   would erase the signal under study.

use crate::{LinalgError, Matrix};

/// Which way a cell was non-finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFiniteKind {
    /// The cell was NaN.
    NaN,
    /// The cell was `+inf`.
    PosInf,
    /// The cell was `-inf`.
    NegInf,
}

impl NonFiniteKind {
    fn of(value: f64) -> Option<Self> {
        if value.is_nan() {
            Some(NonFiniteKind::NaN)
        } else if value == f64::INFINITY {
            Some(NonFiniteKind::PosInf)
        } else if value == f64::NEG_INFINITY {
            Some(NonFiniteKind::NegInf)
        } else {
            None
        }
    }
}

impl std::fmt::Display for NonFiniteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonFiniteKind::NaN => write!(f, "NaN"),
            NonFiniteKind::PosInf => write!(f, "+inf"),
            NonFiniteKind::NegInf => write!(f, "-inf"),
        }
    }
}

/// One diagnosed input degeneracy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationIssue {
    /// A cell held NaN or ±infinity. Fatal: no distance or mean downstream
    /// is defined on it.
    NonFiniteCell {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
        /// What the cell held.
        kind: NonFiniteKind,
    },
    /// A feature column took the same value on every (finite) row.
    /// Advisory: it contributes nothing to any distance and divides by zero
    /// under standardization.
    ZeroVarianceColumn {
        /// The constant column.
        col: usize,
    },
    /// A row is bitwise identical to an earlier row. Advisory: duplicated
    /// workloads are the redundancy the paper's analysis measures, so this
    /// is a diagnostic, never an error.
    DuplicateRow {
        /// The later, duplicated row.
        row: usize,
        /// The earlier row it duplicates.
        of: usize,
    },
    /// The matrix had no rows or no columns. Fatal.
    EmptyInput {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
}

impl ValidationIssue {
    /// Whether this issue makes the matrix unusable as-is (as opposed to
    /// merely suspicious).
    #[must_use]
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            ValidationIssue::NonFiniteCell { .. } | ValidationIssue::EmptyInput { .. }
        )
    }
}

impl std::fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationIssue::NonFiniteCell { row, col, kind } => {
                write!(f, "non-finite cell at row {row}, column {col} ({kind})")
            }
            ValidationIssue::ZeroVarianceColumn { col } => {
                write!(f, "zero-variance feature in column {col}")
            }
            ValidationIssue::DuplicateRow { row, of } => {
                write!(f, "row {row} duplicates row {of}")
            }
            ValidationIssue::EmptyInput { rows, cols } => {
                write!(f, "empty input ({rows}x{cols})")
            }
        }
    }
}

/// The full set of diagnostics for one matrix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    rows: usize,
    cols: usize,
    issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// Shape of the validated matrix as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Every diagnosed issue, in scan order (cells row-major, then
    /// columns, then duplicate rows).
    #[must_use]
    pub fn issues(&self) -> &[ValidationIssue] {
        &self.issues
    }

    /// Whether no issues at all were found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Whether any fatal issue (non-finite cell, empty input) was found.
    #[must_use]
    pub fn has_fatal(&self) -> bool {
        self.issues.iter().any(ValidationIssue::is_fatal)
    }

    /// Coordinates of every non-finite cell, row-major.
    #[must_use]
    pub fn non_finite_cells(&self) -> Vec<(usize, usize)> {
        self.issues
            .iter()
            .filter_map(|i| match i {
                ValidationIssue::NonFiniteCell { row, col, .. } => Some((*row, *col)),
                _ => None,
            })
            .collect()
    }

    /// Sorted, deduplicated indices of rows containing a non-finite cell.
    #[must_use]
    pub fn rows_with_non_finite(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .non_finite_cells()
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        rows.dedup();
        rows
    }

    /// Indices of zero-variance columns, ascending.
    #[must_use]
    pub fn zero_variance_columns(&self) -> Vec<usize> {
        self.issues
            .iter()
            .filter_map(|i| match i {
                ValidationIssue::ZeroVarianceColumn { col } => Some(*col),
                _ => None,
            })
            .collect()
    }

    /// `(row, of)` pairs for every duplicated row, ascending by `row`.
    #[must_use]
    pub fn duplicate_rows(&self) -> Vec<(usize, usize)> {
        self.issues
            .iter()
            .filter_map(|i| match i {
                ValidationIssue::DuplicateRow { row, of } => Some((*row, *of)),
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} matrix, {} issue(s)",
            self.rows,
            self.cols,
            self.issues.len()
        )?;
        const SHOWN: usize = 4;
        for issue in self.issues.iter().take(SHOWN) {
            write!(f, "; {issue}")?;
        }
        if self.issues.len() > SHOWN {
            write!(f, "; and {} more", self.issues.len() - SHOWN)?;
        }
        Ok(())
    }
}

/// Diagnoses `matrix` without modifying it: non-finite cells (row-major,
/// with coordinates), zero-variance columns (computed over the rows free of
/// non-finite cells), duplicate rows (bitwise comparison, so the check is
/// exact and deterministic), and empty shapes.
#[must_use]
pub fn validate(matrix: &Matrix) -> ValidationReport {
    let (rows, cols) = matrix.shape();
    let mut report = ValidationReport {
        rows,
        cols,
        issues: Vec::new(),
    };
    if rows == 0 || cols == 0 {
        report
            .issues
            .push(ValidationIssue::EmptyInput { rows, cols });
        return report;
    }
    let mut finite_rows: Vec<usize> = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut clean = true;
        for (c, &v) in matrix.row(r).iter().enumerate() {
            if let Some(kind) = NonFiniteKind::of(v) {
                report.issues.push(ValidationIssue::NonFiniteCell {
                    row: r,
                    col: c,
                    kind,
                });
                clean = false;
            }
        }
        if clean {
            finite_rows.push(r);
        }
    }
    // Zero-variance detection over the finite rows only: a NaN row must not
    // mask (or fake) a constant column.
    if finite_rows.len() > 1 {
        for c in 0..cols {
            let first = matrix[(finite_rows[0], c)];
            if finite_rows.iter().all(|&r| matrix[(r, c)] == first) {
                report
                    .issues
                    .push(ValidationIssue::ZeroVarianceColumn { col: c });
            }
        }
    }
    // Duplicate detection by bit pattern; O(n² · d) is fine at suite scale
    // (tens of workloads) and exact.
    for (i, &r) in finite_rows.iter().enumerate() {
        for &earlier in &finite_rows[..i] {
            let same = matrix
                .row(r)
                .iter()
                .zip(matrix.row(earlier))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            if same {
                report.issues.push(ValidationIssue::DuplicateRow {
                    row: r,
                    of: earlier,
                });
                break;
            }
        }
    }
    report
}

/// Strict guard: returns [`LinalgError::InvalidData`] carrying the full
/// report when `matrix` has any fatal issue (non-finite cell, empty input).
/// Advisory issues (zero variance, duplicates) pass.
///
/// # Errors
///
/// [`LinalgError::InvalidData`] on any fatal issue.
pub fn ensure_valid(matrix: &Matrix) -> Result<ValidationReport, LinalgError> {
    let report = validate(matrix);
    if report.has_fatal() {
        return Err(LinalgError::InvalidData { report });
    }
    Ok(report)
}

/// The outcome of a lenient repair: the cleaned matrix plus an exact record
/// of what was removed.
#[derive(Debug, Clone, PartialEq)]
pub struct Repair {
    /// The repaired matrix (rows with non-finite cells and zero-variance
    /// columns removed).
    pub matrix: Matrix,
    /// Original indices of the surviving rows, ascending — the mapping from
    /// repaired row index back to the caller's row index.
    pub kept_rows: Vec<usize>,
    /// Original indices of the dropped rows, ascending.
    pub dropped_rows: Vec<usize>,
    /// Original indices of the dropped columns, ascending.
    pub dropped_columns: Vec<usize>,
    /// The diagnostics the repair acted on.
    pub report: ValidationReport,
}

impl Repair {
    /// Whether the repair changed anything.
    #[must_use]
    pub fn changed(&self) -> bool {
        !self.dropped_rows.is_empty() || !self.dropped_columns.is_empty()
    }
}

/// Lenient guard: drops rows containing non-finite cells and zero-variance
/// columns, keeping duplicates (see the module docs for why), and reports
/// exactly what was dropped.
///
/// # Errors
///
/// [`LinalgError::InvalidData`] when the input is empty or the repair would
/// leave no rows or no columns — there is nothing left to analyze.
pub fn repair(matrix: &Matrix) -> Result<Repair, LinalgError> {
    let report = validate(matrix);
    if matrix.is_empty() {
        return Err(LinalgError::InvalidData { report });
    }
    let bad_rows = report.rows_with_non_finite();
    let bad_cols = report.zero_variance_columns();
    let kept_rows: Vec<usize> = (0..matrix.nrows())
        .filter(|r| !bad_rows.contains(r))
        .collect();
    let kept_cols: Vec<usize> = (0..matrix.ncols())
        .filter(|c| !bad_cols.contains(c))
        .collect();
    if kept_rows.is_empty() || kept_cols.is_empty() {
        return Err(LinalgError::InvalidData { report });
    }
    let mut out = Matrix::zeros(kept_rows.len(), kept_cols.len());
    for (ri, &r) in kept_rows.iter().enumerate() {
        for (ci, &c) in kept_cols.iter().enumerate() {
            out[(ri, ci)] = matrix[(r, c)];
        }
    }
    Ok(Repair {
        matrix: out,
        kept_rows,
        dropped_rows: bad_rows,
        dropped_columns: bad_cols,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 2.0, 7.0],
            vec![3.0, 4.0, 7.0],
            vec![1.0, 2.0, 7.0],
            vec![5.0, 6.0, 7.0],
        ])
        .unwrap()
    }

    #[test]
    fn clean_matrix_passes() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]).unwrap();
        let r = validate(&m);
        assert!(r.is_clean(), "{r}");
        assert!(ensure_valid(&m).is_ok());
    }

    #[test]
    fn nan_reported_with_exact_coordinates() {
        let mut m = sample();
        m[(1, 2)] = f64::NAN;
        m[(3, 0)] = f64::INFINITY;
        let r = validate(&m);
        assert_eq!(r.non_finite_cells(), vec![(1, 2), (3, 0)]);
        assert!(r.has_fatal());
        assert!(r.issues().contains(&ValidationIssue::NonFiniteCell {
            row: 1,
            col: 2,
            kind: NonFiniteKind::NaN
        }));
        assert!(r.issues().contains(&ValidationIssue::NonFiniteCell {
            row: 3,
            col: 0,
            kind: NonFiniteKind::PosInf
        }));
        let err = ensure_valid(&m).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidData { .. }));
        assert!(err.to_string().contains("row 1, column 2"));
    }

    #[test]
    fn zero_variance_and_duplicates_are_advisory() {
        let r = validate(&sample());
        assert_eq!(r.zero_variance_columns(), vec![2]);
        assert_eq!(r.duplicate_rows(), vec![(2, 0)]);
        assert!(!r.has_fatal());
        assert!(!r.is_clean());
        assert!(ensure_valid(&sample()).is_ok());
    }

    #[test]
    fn empty_shapes_are_fatal() {
        for m in [
            Matrix::zeros(0, 3),
            Matrix::zeros(3, 0),
            Matrix::zeros(0, 0),
        ] {
            let r = validate(&m);
            assert!(r.has_fatal());
            assert!(matches!(r.issues()[0], ValidationIssue::EmptyInput { .. }));
            assert!(ensure_valid(&m).is_err());
            assert!(repair(&m).is_err());
        }
    }

    #[test]
    fn repair_drops_nan_rows_and_constant_columns_only() {
        let mut m = sample();
        m[(1, 0)] = f64::NAN;
        let rep = repair(&m).unwrap();
        assert_eq!(rep.dropped_rows, vec![1]);
        assert_eq!(rep.dropped_columns, vec![2]);
        assert_eq!(rep.kept_rows, vec![0, 2, 3]);
        assert_eq!(rep.matrix.shape(), (3, 2));
        // Duplicates survive: rows 0 and 2 are both present.
        assert_eq!(rep.matrix.row(0), rep.matrix.row(1));
        assert!(rep.changed());
        assert!(rep.matrix.is_finite());
    }

    #[test]
    fn repair_of_clean_matrix_is_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]).unwrap();
        let rep = repair(&m).unwrap();
        assert!(!rep.changed());
        assert_eq!(rep.matrix, m);
        assert_eq!(rep.kept_rows, vec![0, 1]);
    }

    #[test]
    fn repair_rejects_fully_degenerate_input() {
        // Every row non-finite.
        let m = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![2.0, f64::INFINITY]]).unwrap();
        assert!(matches!(
            repair(&m).unwrap_err(),
            LinalgError::InvalidData { .. }
        ));
        // Every column constant.
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            repair(&m).unwrap_err(),
            LinalgError::InvalidData { .. }
        ));
    }

    #[test]
    fn nan_row_does_not_mask_constant_column() {
        // Column 0 is constant over the finite rows even though the NaN row
        // would break the naive equality scan.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![f64::NAN, 9.0], vec![2.0, 3.0]]).unwrap();
        let r = validate(&m);
        assert_eq!(r.zero_variance_columns(), vec![0]);
    }

    #[test]
    fn report_display_truncates() {
        let mut m = Matrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                m[(r, c)] = f64::NAN;
            }
        }
        let text = validate(&m).to_string();
        assert!(text.contains("9 issue(s)"), "{text}");
        assert!(text.contains("and"), "{text}");
    }
}
