//! Free functions on `&[f64]` vectors.
//!
//! These helpers are deliberately slice-based (rather than introducing a
//! `Vector` newtype) because the rest of the workspace passes characteristic
//! vectors around as plain slices.

use crate::LinalgError;

/// Dot product of two equal-length vectors.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let d = hiermeans_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0])?;
/// assert_eq!(d, 11.0);
/// # Ok(())
/// # }
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
    check_same_len(a, b, "dot")?;
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Element-wise sum `a + b`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    check_same_len(a, b, "add")?;
    Ok(a.iter().zip(b).map(|(x, y)| x + y).collect())
}

/// Element-wise difference `a - b`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    check_same_len(a, b, "sub")?;
    Ok(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// Scales every element by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Linear interpolation `a + t * (b - a)`, the SOM weight-update primitive.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Result<Vec<f64>, LinalgError> {
    check_same_len(a, b, "lerp")?;
    Ok(a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect())
}

/// In-place SOM-style update: `w += h * (x - w)`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if lengths differ.
pub fn update_towards(w: &mut [f64], x: &[f64], h: f64) -> Result<(), LinalgError> {
    check_same_len(w, x, "update_towards")?;
    for (wi, xi) in w.iter_mut().zip(x) {
        *wi += h * (xi - *wi);
    }
    Ok(())
}

/// Normalizes to unit L2 norm; returns the original vector if its norm is 0.
pub fn normalized(a: &[f64]) -> Vec<f64> {
    let n = norm(a);
    if n == 0.0 {
        a.to_vec()
    } else {
        scale(a, 1.0 / n)
    }
}

fn check_same_len(a: &[f64], b: &[f64], op: &'static str) -> Result<(), LinalgError> {
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            left: (a.len(), 1),
            right: (b.len(), 1),
            op,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn dot_mismatched_lengths() {
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn norm_pythagorean() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn add_sub_inverse() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 0.5, 0.5];
        let s = add(&a, &b).unwrap();
        let back = sub(&s, &b).unwrap();
        assert_eq!(back, a.to_vec());
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [10.0, 0.0];
        assert_eq!(lerp(&a, &b, 0.0).unwrap(), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0).unwrap(), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5).unwrap(), vec![5.0, 5.0]);
    }

    #[test]
    fn update_towards_full_step_reaches_target() {
        let mut w = vec![0.0, 0.0];
        update_towards(&mut w, &[2.0, 4.0], 1.0).unwrap();
        assert_eq!(w, vec![2.0, 4.0]);
    }

    #[test]
    fn update_towards_half_step() {
        let mut w = vec![0.0, 0.0];
        update_towards(&mut w, &[2.0, 4.0], 0.5).unwrap();
        assert_eq!(w, vec![1.0, 2.0]);
    }

    #[test]
    fn normalized_unit_norm() {
        let v = normalized(&[3.0, 4.0]);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        // Zero vector passes through unchanged.
        assert_eq!(normalized(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
