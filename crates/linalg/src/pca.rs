//! Principal components analysis.
//!
//! PCA plays two roles in the reproduction:
//!
//! 1. The paper initializes SOM unit weights "by sampling a subspace generated
//!    by the two major principal components" (Section III-A).
//! 2. PCA is the dimension-reduction *baseline* the paper argues SOM improves
//!    upon (Sections III-A, VI); the ablation benches compare the two.

use serde::{Deserialize, Serialize};

use crate::eigen::jacobi_eigen;
use crate::{LinalgError, Matrix};

/// A fitted PCA model.
///
/// # Example
///
/// ```
/// use hiermeans_linalg::{Matrix, pca::Pca};
///
/// # fn main() -> Result<(), hiermeans_linalg::LinalgError> {
/// let data = Matrix::from_rows(&[
///     vec![2.5, 2.4],
///     vec![0.5, 0.7],
///     vec![2.2, 2.9],
///     vec![1.9, 2.2],
///     vec![3.1, 3.0],
/// ])?;
/// let pca = Pca::fit(&data, 1)?;
/// let reduced = pca.transform(&data)?;
/// assert_eq!(reduced.shape(), (5, 1));
/// // The first component captures most of the variance of this
/// // near-collinear cloud.
/// assert!(pca.explained_variance_ratio()[0] > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    components: Matrix,
    means: Vec<f64>,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA with `n_components` principal axes on `data` (rows are
    /// observations).
    ///
    /// For wide data (`ncols > nrows`, the common case for workload
    /// characteristic vectors: 13 workloads x 200 counters) the dual
    /// Gram-matrix method is used, so the eigensolve is on an
    /// `nrows x nrows` matrix instead of `ncols x ncols`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidParameter`] if `n_components` is zero, exceeds
    ///   the number of columns, or (in the dual path) exceeds `nrows - 1`;
    ///   or if `data` has fewer than two rows.
    /// * Propagates eigensolver errors.
    pub fn fit(data: &Matrix, n_components: usize) -> Result<Self, LinalgError> {
        if n_components == 0 || n_components > data.ncols() {
            return Err(LinalgError::InvalidParameter {
                name: "n_components",
                reason: "must be in 1..=ncols",
            });
        }
        if data.nrows() < 2 {
            return Err(LinalgError::InvalidParameter {
                name: "data",
                reason: "PCA requires at least two observations",
            });
        }
        if data.ncols() > data.nrows() {
            Self::fit_dual(data, n_components)
        } else {
            Self::fit_primal(data, n_components)
        }
    }

    fn fit_primal(data: &Matrix, n_components: usize) -> Result<Self, LinalgError> {
        let cov = data.covariance()?;
        let eigen = jacobi_eigen(&cov)?;
        let total_variance: f64 = eigen.values.iter().map(|v| v.max(0.0)).sum();
        let means = column_means(data);

        // Components as rows: n_components x ncols.
        let mut components = Matrix::zeros(n_components, data.ncols());
        for k in 0..n_components {
            for c in 0..data.ncols() {
                components[(k, c)] = eigen.vectors[(c, k)];
            }
        }
        let explained_variance: Vec<f64> = eigen.values[..n_components]
            .iter()
            .map(|v| v.max(0.0))
            .collect();
        Ok(Pca {
            components,
            means,
            explained_variance,
            total_variance,
        })
    }

    /// Dual PCA: eigendecompose the `n x n` Gram matrix `Xc Xcᵀ / (n-1)` of
    /// the centered data. Its nonzero eigenvalues equal those of the
    /// covariance matrix, and each principal axis is recovered as
    /// `Xcᵀ u / ||Xcᵀ u||`.
    fn fit_dual(data: &Matrix, n_components: usize) -> Result<Self, LinalgError> {
        let n = data.nrows();
        if n_components > n.saturating_sub(1) {
            return Err(LinalgError::InvalidParameter {
                name: "n_components",
                reason: "dual PCA supports at most nrows - 1 components",
            });
        }
        let means = column_means(data);
        // Centered data Xc.
        let mut xc = data.clone();
        for r in 0..n {
            let row = xc.row_mut(r);
            for c in 0..row.len() {
                row[c] -= means[c];
            }
        }
        let gram = xc.matmul(&xc.transpose())?.scaled(1.0 / (n as f64 - 1.0));
        let eigen = jacobi_eigen(&gram)?;
        let total_variance: f64 = eigen.values.iter().map(|v| v.max(0.0)).sum();

        let mut components = Matrix::zeros(n_components, data.ncols());
        let mut explained_variance = Vec::with_capacity(n_components);
        // Scratch buffers reused across components: the eigenvector u and the
        // recovered axis v (no per-component allocation).
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; data.ncols()];
        for k in 0..n_components {
            let lambda = eigen.values[k].max(0.0);
            explained_variance.push(lambda);
            eigen.vectors.col_into(k, &mut u);
            // v = Xcᵀ u, normalized.
            v.fill(0.0);
            for (r, row) in xc.rows_iter().enumerate() {
                let ur = u[r];
                if ur == 0.0 {
                    continue;
                }
                for (vc, &x) in v.iter_mut().zip(row) {
                    *vc += ur * x;
                }
            }
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in &mut v {
                    *x /= norm;
                }
            }
            components.row_mut(k).copy_from_slice(&v);
        }
        Ok(Pca {
            components,
            means,
            explained_variance,
            total_variance,
        })
    }

    /// Projects `data` onto the principal axes, producing an
    /// `nrows x n_components` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs from
    /// the fitted data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, LinalgError> {
        if data.ncols() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, self.means.len()),
                right: data.shape(),
                op: "pca transform",
            });
        }
        let mut out = Matrix::zeros(data.nrows(), self.components.nrows());
        for r in 0..data.nrows() {
            for k in 0..self.components.nrows() {
                let mut s = 0.0;
                for c in 0..data.ncols() {
                    s += (data[(r, c)] - self.means[c]) * self.components[(k, c)];
                }
                out[(r, k)] = s;
            }
        }
        Ok(out)
    }

    /// Maps reduced coordinates back to the original space (lossy if
    /// `n_components < ncols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs from
    /// `n_components`.
    pub fn inverse_transform(&self, reduced: &Matrix) -> Result<Matrix, LinalgError> {
        if reduced.ncols() != self.components.nrows() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, self.components.nrows()),
                right: reduced.shape(),
                op: "pca inverse transform",
            });
        }
        let mut out = Matrix::zeros(reduced.nrows(), self.means.len());
        for r in 0..reduced.nrows() {
            for c in 0..self.means.len() {
                let mut s = self.means[c];
                for k in 0..self.components.nrows() {
                    s += reduced[(r, k)] * self.components[(k, c)];
                }
                out[(r, c)] = s;
            }
        }
        Ok(out)
    }

    /// The principal axes as rows (`n_components x ncols`), orthonormal.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// The per-column means subtracted before projection.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Variance captured by each retained component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by each retained component.
    ///
    /// Returns zeros when the data had no variance at all.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance
            .iter()
            .map(|v| v / self.total_variance)
            .collect()
    }
}

fn column_means(data: &Matrix) -> Vec<f64> {
    (0..data.ncols())
        .map(|c| data.col_iter(c).sum::<f64>() / data.nrows() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Matrix {
        // Strongly correlated 2-D cloud along y = x.
        Matrix::from_rows(&[
            vec![2.5, 2.4],
            vec![0.5, 0.7],
            vec![2.2, 2.9],
            vec![1.9, 2.2],
            vec![3.1, 3.0],
            vec![2.3, 2.7],
            vec![2.0, 1.6],
            vec![1.0, 1.1],
            vec![1.5, 1.6],
            vec![1.1, 0.9],
        ])
        .unwrap()
    }

    #[test]
    fn first_component_along_diagonal() {
        let pca = Pca::fit(&cloud(), 2).unwrap();
        let c0 = pca.components().row(0);
        // Both loadings have the same sign and similar magnitude.
        assert!(c0[0] * c0[1] > 0.0);
        assert!((c0[0].abs() - c0[1].abs()).abs() < 0.2);
    }

    #[test]
    fn explained_variance_ratios_sum_to_one_full_rank() {
        let pca = Pca::fit(&cloud(), 2).unwrap();
        let total: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn components_orthonormal() {
        let pca = Pca::fit(&cloud(), 2).unwrap();
        let c = pca.components();
        let g = c.matmul(&c.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn full_rank_reconstruction_exact() {
        let data = cloud();
        let pca = Pca::fit(&data, 2).unwrap();
        let back = pca
            .inverse_transform(&pca.transform(&data).unwrap())
            .unwrap();
        for (a, b) in back.as_slice().iter().zip(data.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn reduced_reconstruction_lossy_but_close() {
        let data = cloud();
        let pca = Pca::fit(&data, 1).unwrap();
        let back = pca
            .inverse_transform(&pca.transform(&data).unwrap())
            .unwrap();
        let err = data.sub(&back).unwrap().frobenius_norm();
        // The cloud is near-collinear, so rank-1 error is small but nonzero.
        assert!(err > 0.0 && err < 1.5);
    }

    #[test]
    fn transform_centers_data() {
        let data = cloud();
        let pca = Pca::fit(&data, 2).unwrap();
        let t = pca.transform(&data).unwrap();
        for k in 0..2 {
            let mean: f64 = t.col(k).iter().sum::<f64>() / t.nrows() as f64;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_component_counts() {
        assert!(Pca::fit(&cloud(), 0).is_err());
        assert!(Pca::fit(&cloud(), 3).is_err());
    }

    #[test]
    fn rejects_single_row() {
        let one = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(Pca::fit(&one, 1).is_err());
    }

    #[test]
    fn dual_pca_matches_primal_on_wide_data() {
        // 4 observations, 6 features: wide, so fit() takes the dual path.
        let wide = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5, 3.0, 1.5, 0.0],
            vec![2.0, 4.1, 1.1, 6.1, 3.0, 0.2],
            vec![3.1, 5.9, 1.4, 9.0, 4.6, -0.1],
            vec![4.0, 8.2, 2.1, 11.9, 6.1, 0.1],
        ])
        .unwrap();
        let dual = Pca::fit(&wide, 2).unwrap();
        let primal = Pca::fit_primal(&wide, 2).unwrap();
        // Eigenvalues agree.
        for (a, b) in dual
            .explained_variance()
            .iter()
            .zip(primal.explained_variance())
        {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // Axes agree up to sign.
        for k in 0..2 {
            let d = dual.components().row(k);
            let p = primal.components().row(k);
            let dot: f64 = d.iter().zip(p).map(|(x, y)| x * y).sum();
            assert!(
                (dot.abs() - 1.0).abs() < 1e-6,
                "component {k}: |dot|={}",
                dot.abs()
            );
        }
        // Projections agree up to sign.
        let td = dual.transform(&wide).unwrap();
        let tp = primal.transform(&wide).unwrap();
        for k in 0..2 {
            let sign = if td[(0, k)] * tp[(0, k)] >= 0.0 {
                1.0
            } else {
                -1.0
            };
            for r in 0..4 {
                assert!((td[(r, k)] - sign * tp[(r, k)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn dual_pca_component_budget() {
        let wide = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 1.0, 0.0, 4.0],
            vec![0.0, 2.0, 3.0, 1.0],
        ])
        .unwrap();
        // 3 rows -> at most 2 dual components.
        assert!(Pca::fit(&wide, 2).is_ok());
        assert!(Pca::fit(&wide, 3).is_err());
    }

    #[test]
    fn transform_shape_mismatch() {
        let pca = Pca::fit(&cloud(), 1).unwrap();
        let other = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(pca.transform(&other).is_err());
        let bad_reduced = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(pca.inverse_transform(&bad_reduced).is_err());
    }
}
