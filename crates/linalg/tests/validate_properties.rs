//! Property tests for the stage-boundary input guards (`validate`).
//!
//! The robustness contract under test: for *any* matrix — poisoned cells,
//! constant columns, duplicated rows, degenerate shapes — the guards never
//! panic, diagnostics carry exact coordinates, and lenient repair either
//! yields a matrix with no fatal issues or a typed error.

use hiermeans_linalg::{validate, LinalgError, Matrix};
use proptest::prelude::*;

/// A finite matrix plus a poison list: `(rows, cols, data, poisons)` where
/// each poison is `(row, col, kind)` with kind 0 = NaN, 1 = +inf, 2 = -inf.
type Poisoned = (usize, usize, Vec<f64>, Vec<(usize, usize, usize)>);

fn poisoned_matrix() -> impl Strategy<Value = Poisoned> {
    (1usize..10, 1usize..7).prop_flat_map(|(rows, cols)| {
        (
            Just(rows),
            Just(cols),
            prop::collection::vec(-1e3..1e3f64, rows * cols),
            prop::collection::vec((0..rows, 0..cols, 0usize..3), 0..5),
        )
    })
}

fn build(rows: usize, cols: usize, data: Vec<f64>, poisons: &[(usize, usize, usize)]) -> Matrix {
    let mut m = Matrix::from_vec(rows, cols, data).expect("len matches");
    for &(r, c, kind) in poisons {
        m[(r, c)] = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
    }
    m
}

/// Row-major coordinates of every non-finite cell — the ground truth the
/// report must reproduce exactly.
fn non_finite_coords(m: &Matrix) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for r in 0..m.nrows() {
        for c in 0..m.ncols() {
            if !m[(r, c)].is_finite() {
                out.push((r, c));
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn poisoned_cells_are_reported_with_exact_coordinates(input in poisoned_matrix()) {
        let (rows, cols, data, poisons) = input;
        let m = build(rows, cols, data, &poisons);
        let expected = non_finite_coords(&m);

        let report = validate::validate(&m);
        prop_assert_eq!(report.non_finite_cells(), expected.clone());
        prop_assert_eq!(report.has_fatal(), !expected.is_empty());

        // The strict guard agrees and its typed error carries the report.
        match validate::ensure_valid(&m) {
            Ok(clean) => prop_assert!(expected.is_empty() && !clean.has_fatal()),
            Err(LinalgError::InvalidData { report }) => {
                prop_assert_eq!(report.non_finite_cells(), expected.clone());
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    #[test]
    fn repair_yields_clean_matrix_or_typed_error(input in poisoned_matrix()) {
        let (rows, cols, data, poisons) = input;
        let m = build(rows, cols, data, &poisons);
        match validate::repair(&m) {
            Ok(repair) => {
                // The repaired matrix must pass the strict guard: no
                // non-finite cells survive, and the dropped zero-variance
                // columns were exactly the constant-over-kept-rows ones.
                let after = validate::validate(&repair.matrix);
                prop_assert!(!after.has_fatal());
                prop_assert!(after.non_finite_cells().is_empty());
                // Kept + dropped rows partition the original rows.
                let mut all_rows = repair.kept_rows.clone();
                all_rows.extend(repair.dropped_rows.iter().copied());
                all_rows.sort_unstable();
                prop_assert_eq!(all_rows, (0..rows).collect::<Vec<_>>());
                prop_assert_eq!(repair.matrix.nrows(), repair.kept_rows.len());
                prop_assert_eq!(
                    repair.matrix.ncols(),
                    cols - repair.dropped_columns.len()
                );
                // Surviving cells are verbatim copies, not re-derived.
                for (ri, &r) in repair.kept_rows.iter().enumerate() {
                    let mut ci = 0;
                    for c in 0..cols {
                        if repair.dropped_columns.contains(&c) {
                            continue;
                        }
                        prop_assert_eq!(
                            repair.matrix[(ri, ci)].to_bits(),
                            m[(r, c)].to_bits()
                        );
                        ci += 1;
                    }
                }
            }
            Err(LinalgError::InvalidData { .. }) => {
                // Legal only when nothing analyzable remains; with continuous
                // random data that means every row was poisoned.
                let clean_rows = (0..rows)
                    .filter(|&r| m.row(r).iter().all(|v| v.is_finite()))
                    .count();
                prop_assert!(clean_rows == 0);
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    #[test]
    fn constant_columns_are_advisory_and_dropped(
        input in (2usize..9, 2usize..6).prop_flat_map(|(rows, cols)| {
            (
                Just(rows),
                Just(cols),
                prop::collection::vec(-1e3..1e3f64, rows * cols),
                0..cols,
                -1e3..1e3f64,
            )
        }),
    ) {
        let (rows, cols, data, const_col, value) = input;
        let mut m = Matrix::from_vec(rows, cols, data).expect("len matches");
        for r in 0..rows {
            m[(r, const_col)] = value;
            // Guarantee every other column actually varies.
            if r == 0 {
                for c in (0..cols).filter(|&c| c != const_col) {
                    m[(0, c)] += 1.0;
                }
            }
        }
        let report = validate::validate(&m);
        prop_assert!(report.zero_variance_columns().contains(&const_col));
        prop_assert!(!report.has_fatal(), "zero variance is advisory, not fatal");

        let repair = validate::repair(&m).expect("other columns still vary");
        prop_assert!(repair.dropped_columns.contains(&const_col));
        prop_assert!(repair.dropped_rows.is_empty());
        prop_assert!(validate::validate(&repair.matrix)
            .zero_variance_columns()
            .is_empty());
    }

    #[test]
    fn duplicate_rows_are_advisory_and_kept(
        input in (2usize..9, 1usize..6).prop_flat_map(|(rows, cols)| {
            (
                Just(rows),
                Just(cols),
                prop::collection::vec(-1e3..1e3f64, rows * cols),
                0..rows,
            )
        }),
    ) {
        let (rows, cols, data, src) = input;
        let mut m = Matrix::from_vec(rows, cols, data).expect("len matches");
        let dup_row = m.row(src).to_vec();
        m.push_row(&dup_row).expect("width matches");

        let report = validate::validate(&m);
        prop_assert!(
            report
                .duplicate_rows()
                .iter()
                .any(|&(row, _)| row == rows),
            "the appended copy must be flagged as a duplicate"
        );
        prop_assert!(!report.has_fatal(), "duplicates are advisory, not fatal");

        // Lenient repair keeps duplicates (dropping them silently would bias
        // the workload population; see the validate module docs).
        if let Ok(repair) = validate::repair(&m) {
            prop_assert!(repair.kept_rows.contains(&rows));
            prop_assert_eq!(repair.dropped_rows.len(), 0);
        }
    }

    #[test]
    fn degenerate_shapes_never_panic(n in 0usize..8) {
        for m in [Matrix::zeros(0, n), Matrix::zeros(n, 0)] {
            let report = validate::validate(&m);
            prop_assert!(report.has_fatal(), "empty input must be fatal");
            let strict = matches!(
                validate::ensure_valid(&m),
                Err(LinalgError::InvalidData { .. })
            );
            prop_assert!(strict, "ensure_valid must reject an empty matrix");
            let lenient = matches!(validate::repair(&m), Err(LinalgError::InvalidData { .. }));
            prop_assert!(lenient, "repair must reject an empty matrix");
        }
    }
}
