//! Property-based tests for the blocked compute kernels.
//!
//! The kernel layer's contract is not "close enough": the blocked matmul
//! and syrk preserve the reference loop's accumulation order and are
//! therefore *bitwise* identical to it, while the norm-trick squared
//! distance is only used for candidate pruning and must stay inside the
//! documented error band.

use hiermeans_linalg::distance::{pairwise, pairwise_with_policy, Metric};
use hiermeans_linalg::kernels::{self, KernelPolicy};
use hiermeans_linalg::Matrix;
use proptest::prelude::*;

fn finite_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1e3..1e3f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("len matches"))
}

/// A matrix whose shape itself is drawn from the strategy, so tile
/// boundaries (64) and remainders are both exercised.
fn any_shape_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| finite_matrix(r, c))
}

proptest! {
    #[test]
    fn blocked_matmul_is_bitwise_equal_to_reference(
        a in any_shape_matrix(1..20, 1..90),
        bcols in 1usize..20,
        seed in 0u64..u64::MAX,
    ) {
        // Build a compatible right-hand side from the seed so both
        // operand shapes vary independently.
        let k = a.ncols();
        let mut state = seed | 1;
        let data: Vec<f64> = (0..k * bcols)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        let b = Matrix::from_vec(k, bcols, data).expect("len matches");
        let blocked = kernels::matmul(&a, &b).unwrap();
        let reference = kernels::matmul_reference(&a, &b).unwrap();
        // Not approximate equality: identical accumulation order means
        // identical bits.
        prop_assert_eq!(blocked.as_slice(), reference.as_slice());
    }

    #[test]
    fn syrk_is_bitwise_equal_to_transpose_matmul(m in any_shape_matrix(1..80, 1..12)) {
        let syrk = kernels::syrk_rows(&m);
        // (MᵀM)[i][j] accumulates over rows in ascending order in both
        // implementations, so the Gram matrix matches bit for bit.
        let reference = kernels::matmul_reference(&m.transpose(), &m).unwrap();
        prop_assert_eq!(syrk.as_slice(), reference.as_slice());
    }

    #[test]
    fn norm_trick_stays_inside_candidate_band(
        x in prop::collection::vec(-1e3..1e3f64, 1..24),
        seed in 0u64..u64::MAX,
    ) {
        let mut state = seed | 1;
        let w: Vec<f64> = (0..x.len())
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 2e3
            })
            .collect();
        let xn = kernels::sq_norm_fast(&x);
        let wn = kernels::sq_norm_fast(&w);
        let trick = (xn + wn - 2.0 * kernels::dot_fast(&x, &w)).max(0.0);
        let exact: f64 = x.iter().zip(&w).map(|(a, b)| (a - b) * (a - b)).sum();
        let band = kernels::candidate_band(x.len(), xn, wn);
        prop_assert!(
            (trick - exact).abs() <= band,
            "trick {trick} vs exact {exact} outside band {band}"
        );
    }

    #[test]
    fn blocked_pairwise_is_within_relative_ulp_budget(
        points in any_shape_matrix(2..24, 1..8),
    ) {
        let scalar = pairwise(&points, Metric::Euclidean).unwrap();
        let blocked =
            pairwise_with_policy(&points, Metric::Euclidean, KernelPolicy::Blocked).unwrap();
        let scale: f64 = scalar.as_slice().iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (s, b) in scalar.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert!(
                (s - b).abs() <= 1e-9 * scale,
                "scalar {s} vs blocked {b} (scale {scale})"
            );
        }
    }

    #[test]
    fn blocked_pairwise_is_exact_on_integer_coordinates(
        coords in prop::collection::vec(0i8..32, 4..40),
    ) {
        // Grid positions — the pipeline's actual clustering input — are
        // small integers, where every product and sum in the norm trick is
        // exactly representable: the blocked path must match bit for bit.
        let rows: Vec<Vec<f64>> = coords
            .chunks_exact(2)
            .map(|p| vec![f64::from(p[0]), f64::from(p[1])])
            .collect();
        let points = Matrix::from_rows(&rows).unwrap();
        for metric in [Metric::Euclidean, Metric::SquaredEuclidean] {
            let scalar = pairwise(&points, metric).unwrap();
            let blocked = pairwise_with_policy(&points, metric, KernelPolicy::Blocked).unwrap();
            prop_assert_eq!(scalar.as_slice(), blocked.as_slice());
        }
    }
}
