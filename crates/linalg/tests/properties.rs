//! Property-based tests for the linear-algebra substrate.

use hiermeans_linalg::distance::{pairwise, pairwise_serial, Metric};
use hiermeans_linalg::parallel;
use hiermeans_linalg::scale::{MinMaxScaler, Standardizer};
use hiermeans_linalg::{eigen, pca::Pca, stats, vector, Matrix};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

fn finite_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1e3..1e3f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("len matches"))
}

proptest! {
    #[test]
    fn euclidean_metric_axioms(a in finite_vec(5), b in finite_vec(5), c in finite_vec(5)) {
        let m = Metric::Euclidean;
        let dab = m.distance(&a, &b).unwrap();
        let dba = m.distance(&b, &a).unwrap();
        let dac = m.distance(&a, &c).unwrap();
        let dcb = m.distance(&c, &b).unwrap();
        // Symmetry, non-negativity, identity, triangle inequality.
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= 0.0);
        prop_assert!(m.distance(&a, &a).unwrap() == 0.0);
        prop_assert!(dab <= dac + dcb + 1e-9);
    }

    #[test]
    fn manhattan_dominates_chebyshev(a in finite_vec(6), b in finite_vec(6)) {
        let l1 = Metric::Manhattan.distance(&a, &b).unwrap();
        let linf = Metric::Chebyshev.distance(&a, &b).unwrap();
        let l2 = Metric::Euclidean.distance(&a, &b).unwrap();
        // Standard norm ordering: Linf <= L2 <= L1.
        prop_assert!(linf <= l2 + 1e-9);
        prop_assert!(l2 <= l1 + 1e-9);
    }

    #[test]
    fn transpose_is_involution(m in finite_matrix(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in finite_matrix(3, 5)) {
        let left = Matrix::identity(3).matmul(&m).unwrap();
        let right = m.matmul(&Matrix::identity(5)).unwrap();
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    #[test]
    fn dot_is_bilinear(a in finite_vec(4), b in finite_vec(4), s in -10.0..10.0f64) {
        let lhs = vector::dot(&vector::scale(&a, s), &b).unwrap();
        let rhs = s * vector::dot(&a, &b).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn standardizer_roundtrips(m in finite_matrix(6, 4)) {
        let s = Standardizer::fit(&m).unwrap();
        let back = s.inverse_transform(&s.transform(&m).unwrap()).unwrap();
        for (x, y) in back.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn standardized_columns_are_zscored(m in finite_matrix(8, 3)) {
        let z = Standardizer::fit_transform(&m).unwrap();
        for c in 0..3 {
            let col = z.col(c);
            let mean = stats::mean(&col).unwrap();
            prop_assert!(mean.abs() < 1e-7);
            let sd = stats::std_dev(&col).unwrap();
            // Either the column was constant (sd == 0) or it is unit sd.
            prop_assert!(sd.abs() < 1e-7 || (sd - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn minmax_in_unit_interval(m in finite_matrix(5, 3)) {
        let t = MinMaxScaler::fit_transform(&m).unwrap();
        for v in t.as_slice() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(v));
        }
    }

    #[test]
    fn jacobi_eigen_reconstructs(m in finite_matrix(4, 4)) {
        // Symmetrize: A = (M + M^T) / 2.
        let a = m.add(&m.transpose()).unwrap().scaled(0.5);
        let e = eigen::jacobi_eigen(&a).unwrap();
        // Sum of eigenvalues equals the trace.
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * (1.0 + trace.abs()));
        // Residual ||A v - lambda v|| is small for each eigenpair.
        for k in 0..4 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..4 {
                let r = av[i] - e.values[k] * v[i];
                prop_assert!(r.abs() < 1e-6 * (1.0 + e.values[k].abs()));
            }
        }
    }

    #[test]
    fn pca_projection_preserves_pairwise_distance_full_rank(m in finite_matrix(6, 3)) {
        // Full-rank PCA is a rigid rotation + centering: pairwise Euclidean
        // distances between rows are preserved exactly.
        let pca = match Pca::fit(&m, 3) {
            Ok(p) => p,
            Err(_) => return Ok(()), // degenerate covariance; skip
        };
        let t = pca.transform(&m).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                let d0 = Metric::Euclidean.distance(m.row(i), m.row(j)).unwrap();
                let d1 = Metric::Euclidean.distance(t.row(i), t.row(j)).unwrap();
                prop_assert!((d0 - d1).abs() < 1e-6 * (1.0 + d0));
            }
        }
    }

    #[test]
    fn percentile_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..30), p in 0.0..50.0f64) {
        let lo = stats::percentile(&xs, p).unwrap();
        let hi = stats::percentile(&xs, 100.0 - p).unwrap();
        prop_assert!(lo <= hi + 1e-9);
    }

    #[test]
    fn correlation_bounded(xs in finite_vec(10), ys in finite_vec(10)) {
        if let Ok(r) = stats::correlation(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn parallel_pairwise_is_bitwise_serial(
        // Row counts straddle the parallelism threshold so both the serial
        // fallback and the threaded path are exercised.
        rows in 2usize..100,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let data: Vec<f64> = {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            (0..rows * cols)
                .map(|_| {
                    state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
                })
                .collect()
        };
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        // Force multiple workers so the threaded path is exercised even on
        // single-core machines (pairwise dispatches serially there).
        parallel::set_worker_override(Some(4));
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Cosine] {
            let par = pairwise(&m, metric).unwrap();
            let ser = pairwise_serial(&m, metric).unwrap();
            // Bit-for-bit: every entry is computed independently, so
            // scheduling cannot perturb a single ULP.
            prop_assert_eq!(par, ser);
        }
        parallel::set_worker_override(None);
    }

    #[test]
    fn pairwise_worker_errors_propagate(rows in 65usize..120, p in 0.0..0.99f64) {
        // Minkowski with p < 1 is rejected inside the workers; the failure
        // must surface as an Err from every chunk schedule, never a panic.
        let m = Matrix::from_vec(rows, 2, vec![1.0; rows * 2]).unwrap();
        parallel::set_worker_override(Some(4));
        let result = pairwise(&m, Metric::Minkowski(p));
        parallel::set_worker_override(None);
        prop_assert!(result.is_err());
    }

    #[test]
    fn map_items_matches_direct_evaluation(len in 0usize..300, offset in 0u64..100) {
        // try_map_items must be a drop-in for a serial map at any length,
        // including the empty input and lengths below the serial threshold.
        let chunking = parallel::Chunking::new(16, 64);
        let got = parallel::try_map_items(len, chunking, |i| {
            Ok::<_, std::convert::Infallible>(i as u64 * 3 + offset)
        })
        .unwrap();
        let want: Vec<u64> = (0..len as u64).map(|i| i * 3 + offset).collect();
        prop_assert_eq!(got, want);
    }
}
