//! Property tests for worker-lane recording in the chunked map-reduce
//! helpers:
//!
//! * every run's intervals partition `0..n_chunks` exactly once, for any
//!   worker count and chunk size;
//! * intervals on one worker within one run never overlap in time (a
//!   worker executes its claimed chunks sequentially);
//! * the recorded *structure* (runs + chunk multiset) is identical for the
//!   serial fallback and any threaded execution — only worker ids and
//!   timestamps may differ;
//! * lane recording never changes the computed results.

use hiermeans_linalg::parallel::{self, Chunking, LaneBuf, LaneClock};
use hiermeans_obs::Collector;
use proptest::prelude::*;

fn lane_clock() -> LaneClock {
    Collector::enabled()
        .lane_clock()
        .expect("enabled collector has a lane clock")
}

/// The worker-count-free projection of a lane buffer: run count plus the
/// sorted chunk indices per run.
fn structure(buf: &LaneBuf) -> (u32, Vec<Vec<u32>>) {
    let runs = buf.runs();
    let mut per_run: Vec<Vec<u32>> = vec![Vec::new(); runs as usize];
    for iv in buf.intervals() {
        per_run[iv.run as usize].push(iv.chunk);
    }
    for chunks in &mut per_run {
        chunks.sort_unstable();
    }
    (runs, per_run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_run_partitions_the_chunks_exactly_once(
        len in 1usize..400,
        chunk_size in 1usize..32,
        workers in 1usize..8,
        runs in 1usize..4,
    ) {
        let chunking = Chunking::new(chunk_size, 0);
        let clock = lane_clock();
        parallel::set_worker_override(Some(workers));
        let mut buf = LaneBuf::new();
        for _ in 0..runs {
            parallel::try_map_chunks_lanes(len, chunking, Some((clock, &mut buf)), |r| {
                Ok::<_, ()>(r.sum::<usize>())
            })
            .unwrap();
        }
        parallel::set_worker_override(None);
        let n_chunks = len.div_ceil(chunk_size);
        let (recorded_runs, per_run) = structure(&buf);
        prop_assert_eq!(recorded_runs as usize, runs);
        for chunks in &per_run {
            prop_assert_eq!(chunks.clone(), (0..n_chunks as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn intervals_on_one_worker_never_overlap(
        len in 1usize..400,
        chunk_size in 1usize..32,
        workers in 1usize..8,
    ) {
        let chunking = Chunking::new(chunk_size, 0);
        let clock = lane_clock();
        parallel::set_worker_override(Some(workers));
        let mut buf = LaneBuf::new();
        parallel::try_map_chunks_lanes(len, chunking, Some((clock, &mut buf)), |r| {
            Ok::<_, ()>(r.count())
        })
        .unwrap();
        parallel::set_worker_override(None);
        for iv in buf.intervals() {
            prop_assert!(iv.begin_us <= iv.end_us);
        }
        let workers_seen: std::collections::BTreeSet<u32> =
            buf.intervals().iter().map(|iv| iv.worker).collect();
        for w in workers_seen {
            let mut mine: Vec<(u64, u64)> = buf
                .intervals()
                .iter()
                .filter(|iv| iv.worker == w)
                .map(|iv| (iv.begin_us, iv.end_us))
                .collect();
            mine.sort_unstable();
            for pair in mine.windows(2) {
                prop_assert!(
                    pair[0].1 <= pair[1].0,
                    "worker {w}: interval {:?} overlaps {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn structure_and_results_are_worker_count_invariant(
        len in 1usize..300,
        chunk_size in 1usize..16,
    ) {
        let chunking = Chunking::new(chunk_size, 0);
        let clock = lane_clock();
        let run = |workers: usize| {
            parallel::set_worker_override(Some(workers));
            let mut buf = LaneBuf::new();
            let items =
                parallel::try_map_items_lanes(len, chunking, Some((clock, &mut buf)), |i| {
                    Ok::<_, ()>(3 * i + 1)
                })
                .unwrap();
            parallel::set_worker_override(None);
            (structure(&buf), items)
        };
        let (serial_structure, serial_items) = run(1);
        prop_assert_eq!(&serial_items, &(0..len).map(|i| 3 * i + 1).collect::<Vec<_>>());
        for workers in [2, 3, 8] {
            let (threaded_structure, threaded_items) = run(workers);
            prop_assert_eq!(&serial_structure, &threaded_structure);
            prop_assert_eq!(&serial_items, &threaded_items);
        }
    }
}
