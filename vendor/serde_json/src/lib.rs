//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` crate's [`Value`] tree to JSON text and
//! parses JSON text back into it. Floats are written with Rust's `f64`
//! `Display`, which produces the shortest representation that round-trips
//! exactly — so `float_roundtrip` semantics hold by construction. Integers
//! without a decimal point or exponent parse as `Int`/`UInt`, everything
//! else numeric as `Float`, mirroring upstream's number handling closely
//! enough for this workspace's round-trip tests.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float, which JSON
/// cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing input, or when the parsed
/// value tree does not match `T`'s shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer ----

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize a non-finite float"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep floats distinguishable from integers on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Reads the four hex digits after `\u`, leaving `pos` on the last one.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX - 3;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 2.5e17, -0.0, 7.0] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&7.0f64).unwrap();
        assert_eq!(s, "7.0");
        assert!(matches!(
            {
                let mut p = Parser {
                    bytes: s.as_bytes(),
                    pos: 0,
                };
                p.parse_value().unwrap()
            },
            Value::Float(_)
        ));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\none\ttab \"quoted\" back\\slash \u{1F600}".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn nested_containers_roundtrip() {
        let data: Vec<(u32, Vec<f64>)> = vec![(1, vec![0.5, 2.5]), (2, vec![])];
        let s = to_string(&data).unwrap();
        assert_eq!(from_str::<Vec<(u32, Vec<f64>)>>(&s).unwrap(), data);
    }

    #[test]
    fn pretty_output_parses_back() {
        let data = vec![vec![1u32, 2], vec![3]];
        let s = to_string_pretty(&data).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), data);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<f64>("NaN").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
