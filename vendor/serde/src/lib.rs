//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of serde's API the workspace uses: the
//! [`Serialize`]/[`Deserialize`] traits and their derive macros, backed by a
//! self-describing [`Value`] tree instead of serde's visitor machinery.
//! `serde_json` (also vendored) renders that tree to JSON text and back.
//!
//! The serialized representation follows serde's external-tagging
//! conventions so documents stay interchangeable with the real crate:
//! structs become objects, unit enum variants become strings, newtype/tuple
//! variants become `{"Variant": ...}` single-entry objects, and struct
//! variants become `{"Variant": {..}}`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A deserialization failure: the value tree did not match the target type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// What went wrong, for diagnostics.
    pub message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the shim's [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Reads one named field out of an object value (derive-macro helper).
///
/// # Errors
///
/// Returns [`DeError`] if `v` is not an object, the field is missing, or the
/// field value does not deserialize as `T`.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => {
            T::from_value(inner).map_err(|e| DeError::new(format!("field `{name}`: {}", e.message)))
        }
        None => match v {
            Value::Object(_) => Err(DeError::new(format!("missing field `{name}`"))),
            _ => Err(DeError::new(format!(
                "expected an object with field `{name}`"
            ))),
        },
    }
}

/// Like [`field`], but a field absent from the object falls back to
/// `T::default()` — the behavior of `#[serde(default)]`, used for
/// forward-compatible deserialization of artifacts written before the
/// field existed.
pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => {
            T::from_value(inner).map_err(|e| DeError::new(format!("field `{name}`: {}", e.message)))
        }
        None => match v {
            Value::Object(_) => Ok(T::default()),
            _ => Err(DeError::new(format!(
                "expected an object with field `{name}`"
            ))),
        },
    }
}

// ---- Serialize impls for primitives and containers ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---- Deserialize impls ----

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected a boolean")),
        }
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    _ => return Err(DeError::new("expected an integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match v {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::new("expected a non-negative integer"))?,
                    Value::UInt(u) => *u,
                    _ => return Err(DeError::new("expected an integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(DeError::new("expected a number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected a string")),
        }
    }
}

impl Deserialize for &'static str {
    /// Borrowed strings cannot be reconstructed from an owned value tree;
    /// real serde rejects this at the type level, the shim at runtime.
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Err(DeError::new(
            "cannot deserialize into a borrowed &'static str",
        ))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected an array")),
        }
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::new(concat!(
                        "expected an array of length ",
                        stringify!($len)
                    ))),
                }
            }
        }
    )*};
}
de_tuple! {
    (A: 0 ; 1)
    (A: 0, B: 1 ; 2)
    (A: 0, B: 1, C: 2 ; 3)
    (A: 0, B: 1, C: 2, D: 3 ; 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4 ; 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5 ; 6)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
