//! Derive macros for the vendored `serde` shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; the input item is parsed directly from the raw
//! `proc_macro::TokenStream`. Supported shapes cover everything this
//! workspace derives: structs with named fields, unit structs, tuple
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! Generics are not supported (no workspace type needs them).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by rendering the type into `serde::Value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` by rebuilding the type from `serde::Value`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

/// A named field plus the subset of `#[serde(...)]` attributes the shim
/// honors (`default` only — enough for forward-compatible new fields).
struct Field {
    name: String,
    default: bool,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => struct_ser(&name, &fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => struct_de(&name, &fields),
        (Item::Enum { name, variants }, Mode::Serialize) => enum_ser(&name, &variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => enum_de(&name, &variants),
    };
    code.parse().unwrap()
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a type name".to_string()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                _ => return Err("unsupported struct shape".to_string()),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err("expected an enum body".to_string()),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Like [`skip_attrs_and_vis`], but reports whether any of the skipped
/// attributes was `#[serde(default)]`.
fn scan_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if attr_is_serde_default(g.stream()) {
                        default = true;
                    }
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return default,
        }
    }
}

/// Recognizes the attribute body `serde(default)` (within `#[...]`).
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

/// Extracts field names from `name: Type, ...`, tracking `<`/`>` depth so
/// commas inside generic arguments do not split fields. A preceding
/// `#[serde(default)]` attribute marks the field as defaultable.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = scan_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a field name, found `{other}`")),
        };
        i += 1;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        fields.push(Field { name, default });
        // Skip the type: advance to the next comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts fields of a tuple struct/variant body (`Type, Type, ...`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth: i32 = 0;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found `{other}`")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde shim derive: explicit discriminant on variant `{name}` is not supported"
            ));
        }
        variants.push((name, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---- code generation ----

/// Renders one named-field initializer for deserialization, honoring the
/// field's `#[serde(default)]` flag.
fn field_de_init(f: &Field, source: &str) -> String {
    let name = &f.name;
    if f.default {
        format!("{name}: serde::field_or_default({source}, {name:?})?")
    } else {
        format!("{name}: serde::field({source}, {name:?})?")
    }
}

fn struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!(
            "match v {{\n\
                 serde::Value::Null => Ok({name}),\n\
                 _ => Err(serde::DeError::new(\"expected null for unit struct {name}\")),\n\
             }}"
        ),
        Fields::Named(names) => {
            let inits: Vec<String> = names.iter().map(|f| field_de_init(f, "v")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Fields::Tuple(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|idx| format!("serde::Deserialize::from_value(&items[{idx}])?"))
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({inits})),\n\
                     _ => Err(serde::DeError::new(\"expected an array of length {n}\")),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<{name}, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn enum_ser(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),"),
            Fields::Tuple(1) => format!(
                "{name}::{v}(f0) => serde::Value::Object(vec![({v:?}.to_string(), \
                 serde::Serialize::to_value(f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|idx| format!("f{idx}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|idx| format!("serde::Serialize::to_value(f{idx})"))
                    .collect();
                format!(
                    "{name}::{v}({binds}) => serde::Value::Object(vec![({v:?}.to_string(), \
                     serde::Value::Array(vec![{items}]))]),",
                    binds = binds.join(", "),
                    items = items.join(", ")
                )
            }
            Fields::Named(fields) => {
                let binds = fields
                    .iter()
                    .map(|f| f.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let f = &f.name;
                        format!("({f:?}.to_string(), serde::Serialize::to_value({f}))")
                    })
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => serde::Value::Object(vec![({v:?}.to_string(), \
                     serde::Value::Object(vec![{entries}]))]),",
                    entries = entries.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}",
        arms = arms.join("\n")
    )
}

fn enum_de(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "{v:?} => Ok({name}::{v}(serde::Deserialize::from_value(inner)?)),"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|idx| format!("serde::Deserialize::from_value(&items[{idx}])?"))
                    .collect();
                Some(format!(
                    "{v:?} => match inner {{\n\
                         serde::Value::Array(items) if items.len() == {n} => \
                             Ok({name}::{v}({inits})),\n\
                         _ => Err(serde::DeError::new(\
                             \"expected an array for variant {v}\")),\n\
                     }},",
                    inits = inits.join(", ")
                ))
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields.iter().map(|f| field_de_init(f, "inner")).collect();
                Some(format!(
                    "{v:?} => Ok({name}::{v} {{ {} }}),",
                    inits.join(", ")
                ))
            }
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<{name}, serde::DeError> {{\n\
                 match v {{\n\
                     serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(serde::DeError::new(format!(\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(serde::DeError::new(format!(\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(serde::DeError::new(\
                         \"expected a string or single-entry object for enum {name}\")),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n")
    )
}
