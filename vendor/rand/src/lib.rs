//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small, deterministic subset of the `rand` 0.8 API the
//! workspace actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`/`u64`, and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna), seeded
//! through SplitMix64 exactly as the reference implementation recommends. It
//! is *not* the same stream as upstream `StdRng` (ChaCha12), but every
//! consumer in this workspace treats the stream as an opaque deterministic
//! source, so only run-to-run reproducibility matters — and that is
//! guaranteed: the same seed always yields the same sequence, on every
//! platform.

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator core: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, like `rand`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the high 53 bits, matching `rand`'s
    /// open-upper-bound convention.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges samplable by [`Rng::gen_range`].
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire-style rejection to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl UniformRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding landing exactly on the excluded upper bound.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = StdRng::seed_from_u64(5);
        let _ = a.gen::<u64>();
        let mut b = a.clone();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
