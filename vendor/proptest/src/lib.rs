//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of proptest's API the workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`] macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: inputs are drawn from a PRNG seeded
//! deterministically from the test's `file!()`/`line!()` (so failures
//! reproduce exactly on re-run, with no persistence files needed), and
//! failing cases are reported but not shrunk.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The generator handed to strategies while sampling test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// How a property test runs; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            fun: f,
        }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            fun: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.fun)(self.source.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.fun)(self.source.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
unsigned_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification for [`vec`]: a fixed size or a range of sizes.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `len` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Macro-support runner: executes `body` for `config.cases` deterministic
/// cases, panicking with the case's message on the first failure.
pub fn run_cases<F>(config: ProptestConfig, file: &str, line: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the location makes each property's stream independent,
    // stable across runs, and platform-independent.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^= u64::from(line);
    for case in 0..config.cases {
        let mut rng = TestRng {
            inner: StdRng::seed_from_u64(seed.wrapping_add(u64::from(case))),
        };
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest case {}/{} failed at {}:{}: {}",
                case + 1,
                config.cases,
                file,
                line,
                e
            );
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::run_cases($cfg, file!(), line!(), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    __proptest_result
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the surrounding property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the surrounding property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pl, __pr) = (&$left, &$right);
        $crate::prop_assert!(
            __pl == __pr,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __pl,
            __pr
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pl, __pr) = (&$left, &$right);
        $crate::prop_assert!(__pl == __pr, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut count_low = 0;
        crate::run_cases(ProptestConfig::with_cases(500), file!(), line!(), |rng| {
            let x = Strategy::sample(&(10usize..20), rng);
            prop_assert!((10..20).contains(&x));
            let f = Strategy::sample(&(-1.5..2.5f64), rng);
            prop_assert!((-1.5..2.5).contains(&f));
            if x < 15 {
                count_low += 1;
            }
            Ok(())
        });
        assert!(
            count_low > 0 && count_low < 500,
            "should spread over the range"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0.0..1.0f64, 2..10);
        let mut a = crate::TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(1),
        };
        let mut b = crate::TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(1),
        };
        use rand::SeedableRng;
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn map_and_flat_map_compose(n in 1usize..6) {
            let nested = (1usize..4)
                .prop_flat_map(|k| prop::collection::vec(0u64..10, k))
                .prop_map(|v| v.len());
            let _ = nested; // strategies are reusable by reference
            prop_assert!(n < 6);
        }

        fn tuples_sample_elementwise((a, b) in (0u32..5, 10u32..15)) {
            prop_assert!(a < 5);
            prop_assert!((10..15).contains(&b));
            prop_assert_eq!(a + b - b, a);
        }
    }
}
