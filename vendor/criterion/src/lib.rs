//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: per sample, the body runs enough
//! iterations to fill a small time slice, and the per-iteration median,
//! minimum, and mean across samples are printed. There is no statistical
//! outlier analysis, HTML report, or baseline comparison — the output is a
//! human-readable line per benchmark on stdout.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which is what it forwards to).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point handed to each target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for compatibility with generated mains; command-line
    /// arguments (`--bench`, filters) are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting only of a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&self.name, &id.id, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for this sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Target wall-clock time for one measurement sample.
const SAMPLE_SLICE: Duration = Duration::from_millis(25);

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    // Calibration: one iteration, also serving as warm-up.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (SAMPLE_SLICE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_nanos: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));

    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let min = per_iter_nanos[0];
    let mean = per_iter_nanos.iter().sum::<f64>() / per_iter_nanos.len() as f64;
    println!(
        "{group}/{id}: median {} (min {}, mean {}, {samples} samples x {iters_per_sample} iters)",
        fmt_nanos(median),
        fmt_nanos(min),
        fmt_nanos(mean),
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles target functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("complete", 128).id, "complete/128");
        assert_eq!(BenchmarkId::from_parameter("ward").id, "ward");
    }
}
