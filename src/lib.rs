//! # hiermeans
//!
//! A production-quality reproduction of *Hierarchical Means: Single Number
//! Benchmarking with Workload Cluster Analysis* (Yoo, Lee, Lee & Chow,
//! IISWC 2007).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the hierarchical means (HGM/HAM/HHM) and the cluster-aware
//!   scoring pipeline, the paper's primary contribution.
//! * [`som`] — a from-scratch Self-Organizing Map (the paper's
//!   dimension-reduction stage).
//! * [`cluster`] — agglomerative hierarchical clustering with dendrograms
//!   (the paper's clustering stage), plus a k-means baseline.
//! * [`workload`] — the simulated Java benchmarking substrate: the paper's
//!   13-workload suite, machines A/B/reference, execution-time simulation,
//!   SAR counter generation, and hprof-style method-utilization profiling.
//! * [`linalg`] — dense linear algebra, PCA, scalers, and distances.
//! * [`viz`] — ASCII renderings of SOM maps, U-matrices, and dendrograms.
//!
//! # Quickstart
//!
//! ```
//! use hiermeans::core::means::{geometric_mean, Mean};
//! use hiermeans::core::hierarchical::hierarchical_mean;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Five workload speedups; the last three are redundant clones of one
//! // behaviour, so the plain geometric mean over-weights them.
//! let speedups = [2.0, 4.0, 1.1, 1.1, 1.1];
//! let plain = geometric_mean(&speedups)?;
//!
//! // Cluster-aware score: {0}, {1}, {2, 3, 4}.
//! let clusters: Vec<Vec<usize>> = vec![vec![0], vec![1], vec![2, 3, 4]];
//! let hgm = hierarchical_mean(&speedups, &clusters, Mean::Geometric)?;
//!
//! assert!(hgm > plain); // redundancy no longer drags the score down
//! # Ok(())
//! # }
//! ```

pub use hiermeans_cluster as cluster;
pub use hiermeans_core as core;
pub use hiermeans_linalg as linalg;
pub use hiermeans_som as som;
pub use hiermeans_viz as viz;
pub use hiermeans_workload as workload;
