//! Serialization round-trips across the public data structures: trained
//! models and analysis artifacts must survive JSON persistence bit-exactly
//! (serde_json's `float_roundtrip` feature is enabled workspace-wide).

use hiermeans::cluster::{
    agglomerative, ClusterAssignment, Dendrogram, KMeans, KMeansConfig, Linkage,
};
use hiermeans::core::analysis::SuiteAnalysis;
use hiermeans::core::report::StudyReport;
use hiermeans::linalg::distance::Metric;
use hiermeans::linalg::Matrix;
use hiermeans::som::{Som, SomBuilder};
use hiermeans::workload::execution::SpeedupTable;
use hiermeans::workload::measurement::Characterization;
use hiermeans::workload::{BenchmarkSuite, Machine};

fn points() -> Matrix {
    Matrix::from_rows(&[
        vec![0.0, 0.0],
        vec![0.5, 0.1],
        vec![5.0, 5.0],
        vec![5.5, 5.2],
        vec![9.0, 0.0],
    ])
    .unwrap()
}

#[test]
fn matrix_roundtrip() {
    let m = points();
    let json = serde_json::to_string(&m).unwrap();
    let back: Matrix = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

#[test]
fn trained_som_roundtrip() {
    let som = SomBuilder::new(4, 4)
        .seed(11)
        .epochs(30)
        .train(&points())
        .unwrap();
    let json = serde_json::to_string(&som).unwrap();
    let back: Som = serde_json::from_str(&json).unwrap();
    assert_eq!(som.weights(), back.weights());
    assert_eq!(som.grid(), back.grid());
    // The deserialized map answers BMU queries identically.
    for row in points().rows_iter() {
        assert_eq!(som.bmu(row).unwrap(), back.bmu(row).unwrap());
    }
}

#[test]
fn dendrogram_roundtrip() {
    let d = agglomerative::cluster(&points(), Metric::Euclidean, Linkage::Complete).unwrap();
    let json = serde_json::to_string(&d).unwrap();
    let back: Dendrogram = serde_json::from_str(&json).unwrap();
    assert_eq!(d, back);
    for k in 1..=5 {
        assert_eq!(d.cut_into(k).unwrap(), back.cut_into(k).unwrap());
    }
}

#[test]
fn assignment_roundtrip() {
    let a = ClusterAssignment::from_labels(&[0, 1, 0, 2, 1]).unwrap();
    let json = serde_json::to_string(&a).unwrap();
    let back: ClusterAssignment = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back);
}

#[test]
fn kmeans_roundtrip() {
    let m = KMeans::fit(&points(), KMeansConfig::new(2)).unwrap();
    let json = serde_json::to_string(&m).unwrap();
    let back: KMeans = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

#[test]
fn suite_and_speedups_roundtrip() {
    let suite = BenchmarkSuite::paper();
    let json = serde_json::to_string(&suite).unwrap();
    let back: BenchmarkSuite = serde_json::from_str(&json).unwrap();
    assert_eq!(suite, back);

    let table = SpeedupTable::paper_exact();
    let json = serde_json::to_string(&table).unwrap();
    let back: SpeedupTable = serde_json::from_str(&json).unwrap();
    assert_eq!(table, back);
    assert_eq!(
        table.geometric_mean(Machine::A).unwrap(),
        back.geometric_mean(Machine::A).unwrap()
    );
}

#[test]
fn study_report_roundtrip_all_characterizations() {
    for ch in Characterization::paper_set() {
        let analysis = SuiteAnalysis::paper(ch).unwrap();
        let report = StudyReport::from_analysis(&analysis).unwrap();
        let back = StudyReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back, "{ch}");
    }
}
