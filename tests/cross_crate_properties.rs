//! Cross-crate property tests: invariants that span the means, the
//! clustering, and the pipeline.

use hiermeans::cluster::{agglomerative, Linkage};
use hiermeans::core::hierarchical::{ham, hgm, hhm, hierarchical_mean_of};
use hiermeans::core::means::{geometric_mean, Mean};
use hiermeans::core::redundancy::implied_weights;
use hiermeans::linalg::distance::Metric;
use hiermeans::linalg::Matrix;
use proptest::prelude::*;

/// Random positive values plus a random partition over them.
fn values_and_partition() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    (2usize..14).prop_flat_map(|n| {
        let values = prop::collection::vec(0.05..20.0f64, n);
        let labels = prop::collection::vec(0usize..4, n);
        (values, labels).prop_map(|(values, labels)| {
            let mut clusters: Vec<Vec<usize>> = Vec::new();
            let mut seen: Vec<usize> = Vec::new();
            for (i, &l) in labels.iter().enumerate() {
                match seen.iter().position(|&s| s == l) {
                    Some(c) => clusters[c].push(i),
                    None => {
                        seen.push(l);
                        clusters.push(vec![i]);
                    }
                }
            }
            (values, clusters)
        })
    })
}

proptest! {
    #[test]
    fn hierarchical_mean_ordering((values, clusters) in values_and_partition()) {
        let g = hgm(&values, &clusters).unwrap();
        let a = ham(&values, &clusters).unwrap();
        let h = hhm(&values, &clusters).unwrap();
        prop_assert!(h <= g + 1e-9, "HHM {h} > HGM {g}");
        prop_assert!(g <= a + 1e-9, "HGM {g} > HAM {a}");
    }

    #[test]
    fn hierarchical_equals_implied_weighted((values, clusters) in values_and_partition()) {
        let w = implied_weights(values.len(), &clusters).unwrap();
        for mean in Mean::all() {
            let hier = hiermeans::core::hierarchical::hierarchical_mean(&values, &clusters, mean).unwrap();
            let weighted = mean.compute_weighted(&values, &w).unwrap();
            prop_assert!((hier - weighted).abs() < 1e-9 * (1.0 + hier.abs()), "{mean}");
        }
    }

    #[test]
    fn hgm_bounded_by_extreme_values((values, clusters) in values_and_partition()) {
        let g = hgm(&values, &clusters).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= lo - 1e-12 && g <= hi + 1e-12);
    }

    #[test]
    fn hgm_scale_equivariant((values, clusters) in values_and_partition(), c in 0.1..10.0f64) {
        let g = hgm(&values, &clusters).unwrap();
        let scaled: Vec<f64> = values.iter().map(|v| v * c).collect();
        let gs = hgm(&scaled, &clusters).unwrap();
        prop_assert!((gs / g - c).abs() < 1e-9 * c);
    }

    #[test]
    fn exact_duplicates_within_cluster_never_change_hgm(
        values in prop::collection::vec(0.1..10.0f64, 2..8),
        copies in 1usize..5,
    ) {
        // Clusters: first value alone, the rest together, duplicate the last
        // value (same cluster) `copies` times.
        let n = values.len();
        let base_clusters = vec![vec![0], (1..n).collect::<Vec<_>>()];
        // Make the duplicated member exactly equal to an existing member of
        // its cluster: append copies of values[n-1].
        let mut padded = values.clone();
        padded.extend(std::iter::repeat_n(values[n - 1], copies));
        let mut padded_clusters = base_clusters.clone();
        padded_clusters[1].extend(n..n + copies);

        // The inner GM of cluster 1 changes unless its members are all equal,
        // so test the exact-invariance case: all members equal.
        let uniform: Vec<f64> = std::iter::once(values[0])
            .chain(std::iter::repeat_n(values[1], n - 1))
            .collect();
        let mut uniform_padded = uniform.clone();
        uniform_padded.extend(std::iter::repeat_n(values[1], copies));
        let before = hgm(&uniform, &base_clusters).unwrap();
        let after = hgm(&uniform_padded, &padded_clusters).unwrap();
        prop_assert!((before - after).abs() < 1e-9);

        // And in general the padded plain GM differs while staying bounded.
        let plain_before = geometric_mean(&values).unwrap();
        let plain_after = geometric_mean(&padded).unwrap();
        let _ = (plain_before, plain_after);
    }

    #[test]
    fn dendrogram_cuts_partition_everything(
        coords in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 3..12),
    ) {
        let rows: Vec<Vec<f64>> = coords.iter().map(|&(x, y)| vec![x, y]).collect();
        let pts = Matrix::from_rows(&rows).unwrap();
        let d = agglomerative::cluster(&pts, Metric::Euclidean, Linkage::Complete).unwrap();
        for k in 1..=coords.len() {
            let cut = d.cut_into(k).unwrap();
            prop_assert_eq!(cut.n_clusters(), k);
            prop_assert_eq!(cut.len(), coords.len());
            // HGM over any cut is well-defined for positive scores.
            let scores: Vec<f64> = (0..coords.len()).map(|i| 1.0 + i as f64).collect();
            let h = hierarchical_mean_of(&scores, &cut, Mean::Geometric).unwrap();
            prop_assert!(h > 0.0);
        }
    }

    #[test]
    fn complete_linkage_merge_distances_dominate_single(
        coords in prop::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 3..10),
    ) {
        let rows: Vec<Vec<f64>> = coords.iter().map(|&(x, y)| vec![x, y]).collect();
        let pts = Matrix::from_rows(&rows).unwrap();
        let complete = agglomerative::cluster(&pts, Metric::Euclidean, Linkage::Complete).unwrap();
        let single = agglomerative::cluster(&pts, Metric::Euclidean, Linkage::Single).unwrap();
        // The final (root) merge distance under complete linkage is at least
        // the one under single linkage.
        let last = |d: &hiermeans::cluster::Dendrogram| d.merges().last().unwrap().distance;
        prop_assert!(last(&complete) >= last(&single) - 1e-9);
    }
}
