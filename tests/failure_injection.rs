//! Failure injection: malformed inputs must surface as typed errors through
//! the public API — never panics.

use hiermeans::cluster::{agglomerative, ClusterError, KMeans, KMeansConfig, Linkage};
use hiermeans::core::hierarchical::hgm;
use hiermeans::core::means::{geometric_mean, Mean};
use hiermeans::core::pipeline::{run_pipeline, PipelineConfig};
use hiermeans::core::CoreError;
use hiermeans::linalg::distance::Metric;
use hiermeans::linalg::scale::Standardizer;
use hiermeans::linalg::{LinalgError, Matrix};
use hiermeans::som::{SomBuilder, SomError};
use hiermeans::workload::execution::{ExecutionSimulator, SpeedupTable};
use hiermeans::workload::BenchmarkSuite;

#[test]
fn means_reject_bad_values() {
    assert!(matches!(
        geometric_mean(&[]).unwrap_err(),
        CoreError::EmptyInput
    ));
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = geometric_mean(&[1.0, bad]).unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidValue { index: 1, .. }),
            "{bad}"
        );
    }
}

#[test]
fn hierarchical_means_reject_bad_partitions() {
    let v = [1.0, 2.0, 3.0];
    for clusters in [
        vec![],                       // no clusters
        vec![vec![0usize, 1]],        // missing index 2
        vec![vec![0, 1], vec![1, 2]], // duplicate
        vec![vec![0, 1, 2], vec![]],  // empty cluster
        vec![vec![0, 1, 2, 7]],       // out of range
    ] {
        assert!(matches!(
            hgm(&v, &clusters).unwrap_err(),
            CoreError::InvalidClusters { .. }
        ));
    }
}

#[test]
fn weighted_means_reject_bad_weights() {
    let v = [1.0, 2.0];
    for weights in [
        vec![1.0],
        vec![-1.0, 1.0],
        vec![0.0, 0.0],
        vec![f64::NAN, 1.0],
    ] {
        assert!(matches!(
            Mean::Geometric.compute_weighted(&v, &weights).unwrap_err(),
            CoreError::InvalidWeights { .. }
        ));
    }
}

#[test]
fn som_rejects_degenerate_inputs() {
    let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
    assert!(matches!(
        SomBuilder::new(0, 5).train(&data).unwrap_err(),
        SomError::InvalidConfig { .. }
    ));
    assert!(matches!(
        SomBuilder::new(3, 3).epochs(0).train(&data).unwrap_err(),
        SomError::InvalidConfig { .. }
    ));
    let empty = Matrix::zeros(0, 2);
    assert!(matches!(
        SomBuilder::new(3, 3).train(&empty).unwrap_err(),
        SomError::EmptyData
    ));
    let mut nan = data.clone();
    nan[(0, 0)] = f64::NAN;
    // Stage-boundary validation reports the exact offending cell.
    match SomBuilder::new(3, 3).train(&nan).unwrap_err() {
        SomError::InvalidData { report } => {
            assert_eq!(report.non_finite_cells(), vec![(0, 0)]);
        }
        other => panic!("expected InvalidData, got {other:?}"),
    }
}

#[test]
fn clustering_rejects_bad_distance_matrices() {
    let bad = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap();
    assert!(matches!(
        agglomerative::cluster_from_distances(&bad, Linkage::Complete).unwrap_err(),
        ClusterError::InvalidDistanceMatrix { .. }
    ));
    let nan_pts = Matrix::from_rows(&[vec![f64::NAN], vec![1.0]]).unwrap();
    assert!(agglomerative::cluster(&nan_pts, Metric::Euclidean, Linkage::Complete).is_err());
}

#[test]
fn kmeans_rejects_bad_configs() {
    let pts = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
    assert!(matches!(
        KMeans::fit(&pts, KMeansConfig::new(0)).unwrap_err(),
        ClusterError::InvalidClusterCount { .. }
    ));
    assert!(KMeans::fit(&pts, KMeansConfig::new(3)).is_err());
}

#[test]
fn pipeline_propagates_stage_errors() {
    let empty = Matrix::zeros(0, 4);
    assert!(matches!(
        run_pipeline(&empty, &PipelineConfig::default()).unwrap_err(),
        CoreError::Som(_)
    ));
}

#[test]
fn simulator_rejects_bad_parameters() {
    assert!(ExecutionSimulator::paper().with_runs(0).is_err());
    assert!(ExecutionSimulator::paper().with_noise(-1.0).is_err());
    assert!(ExecutionSimulator::paper()
        .speedup_table()
        .unwrap()
        .geometric_mean(hiermeans::workload::Machine::A)
        .is_ok());
}

#[test]
fn speedup_table_rejects_nonpositive_scores() {
    let suite = BenchmarkSuite::paper();
    let mut a = vec![1.0; 13];
    a[3] = 0.0;
    assert!(SpeedupTable::new(suite, a, vec![1.0; 13]).is_err());
}

#[test]
fn standardizer_errors_are_typed() {
    let one_row = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
    assert!(matches!(
        Standardizer::fit(&one_row).unwrap_err(),
        LinalgError::InvalidParameter { .. }
    ));
}

#[test]
fn errors_format_and_chain() {
    // Every error type implements Display + Error with sources.
    let err = run_pipeline(&Matrix::zeros(0, 1), &PipelineConfig::default()).unwrap_err();
    let msg = err.to_string();
    assert!(!msg.is_empty());
    let mut source: Option<&dyn std::error::Error> = std::error::Error::source(&err);
    let mut depth = 0;
    while let Some(s) = source {
        depth += 1;
        source = s.source();
    }
    assert!(depth <= 4, "error chains stay shallow");
}
