//! End-to-end checks of the extension experiments exposed by the `repro`
//! harness library.

use hiermeans_bench::{experiments, extensions};

#[test]
fn every_paper_artifact_renders() {
    use hiermeans_workload::measurement::Characterization;
    assert!(experiments::table1().contains("SciMark2.FFT"));
    assert!(experiments::table2().contains("UltraSPARC"));
    assert!(experiments::table3().unwrap().contains("Geometric Mean"));
    for ch in Characterization::paper_set() {
        assert!(experiments::figure_som(ch).unwrap().contains("compress"));
        let dend = experiments::figure_dendrogram(ch).unwrap();
        assert!(dend.contains("FFT") && dend.contains('+'));
        let table = experiments::table_hgm(ch).unwrap();
        assert!(table.contains("paper A") && table.contains("pipe r"));
    }
}

#[test]
fn mica_keeps_the_kernels_together() {
    let s = extensions::mica_characterization().unwrap();
    // The SOM map legend shows at least FFT and LU co-located or adjacent;
    // assert the table renders and the dendrogram mentions all kernels.
    for name in ["FFT", "LU", "MonteCarlo", "SOR", "Sparse"] {
        assert!(s.contains(name), "missing {name}");
    }
    assert!(s.contains("HGM A"));
}

#[test]
fn suite_evaluation_flags_scimark_redundancy() {
    let s = extensions::suite_evaluation().unwrap();
    // Under at least one characterization SciMark2 occupies a single
    // cluster (internal redundancy 0.80).
    assert!(s.contains("SciMark2"));
    assert!(s.contains("0.80"), "{s}");
}

#[test]
fn counter_correlation_reports_high_redundancy() {
    let s = extensions::counter_correlation().unwrap();
    // Two latent dimensions drive everything, so 95% of variance needs
    // very few principal components.
    let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
    let dims: Vec<usize> = lines
        .iter()
        .skip(2) // header + separator
        .map(|l| l.split('|').next_back().unwrap().trim().parse().unwrap())
        .collect();
    assert!(dims.iter().all(|&d| d <= 4), "{dims:?}");
}

#[test]
fn jackknife_favors_hgm_for_clustered_members() {
    let s = extensions::jackknife_table().unwrap();
    // The SciMark2 rows: plain swing visibly larger than HGM swing on A.
    let row = s
        .lines()
        .find(|l| l.trim_start().starts_with("MonteCarlo"))
        .unwrap();
    let cells: Vec<f64> = row
        .split('|')
        .skip(1)
        .take(2)
        .map(|c| c.trim().parse().unwrap())
        .collect();
    assert!(cells[0].abs() > cells[1].abs(), "{row}");
}

#[test]
fn json_reports_parse_back() {
    let json = extensions::json_reports().unwrap();
    let reports: Vec<hiermeans_core::report::StudyReport> = serde_json::from_str(&json).unwrap();
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert_eq!(r.workloads.len(), 13);
        assert_eq!(r.scores.len(), 7);
    }
}
