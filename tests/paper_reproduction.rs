//! End-to-end reproduction assertions: every paper artifact, regenerated
//! through the public API, matches the published results (exactly for the
//! scoring math over recovered clusterings, in shape for the full simulated
//! pipeline).

use hiermeans::core::analysis::SuiteAnalysis;
use hiermeans::core::hierarchical::hgm;
use hiermeans::core::means::Mean;
use hiermeans::core::score::ScoreTable;
use hiermeans::core::CoreError;
use hiermeans::workload::execution::{ExecutionSimulator, SpeedupTable};
use hiermeans::workload::measurement::{
    paper_hgm_table, reference_clustering, Characterization, PAPER_PLAIN_GM, SCIMARK2,
};
use hiermeans::workload::{BenchmarkSuite, Machine, SourceSuite};

#[test]
fn table1_suite_composition() {
    let suite = BenchmarkSuite::paper();
    assert_eq!(suite.len(), 13);
    assert_eq!(suite.by_suite(SourceSuite::SpecJvm98).len(), 5);
    assert_eq!(suite.by_suite(SourceSuite::SciMark2).len(), 5);
    assert_eq!(suite.by_suite(SourceSuite::DaCapo).len(), 3);
}

#[test]
fn table2_machine_contrast() {
    // The experimental contrast the paper builds on: same clock, 4x the L2,
    // 4x the memory on machine A.
    let a = Machine::A.spec();
    let b = Machine::B.spec();
    assert_eq!(a.clock_ghz, b.clock_ghz);
    assert_eq!(a.l2_cache_kb, 4 * b.l2_cache_kb);
    assert_eq!(a.memory_mb, 4 * b.memory_mb);
}

#[test]
fn table3_simulated_protocol_matches_published_speedups() {
    let table = ExecutionSimulator::paper().speedup_table().unwrap();
    let exact = SpeedupTable::paper_exact();
    for machine in Machine::COMPARISON {
        for i in 0..13 {
            let sim = table.speedups(machine)[i];
            let paper = exact.speedups(machine)[i];
            assert!(
                (sim / paper - 1.0).abs() < 0.05,
                "workload {i} on {machine}: {sim} vs {paper}"
            );
        }
    }
    let gm_a = table.geometric_mean(Machine::A).unwrap();
    let gm_b = table.geometric_mean(Machine::B).unwrap();
    assert!((gm_a - PAPER_PLAIN_GM.0).abs() < 0.03);
    assert!((gm_b - PAPER_PLAIN_GM.1).abs() < 0.03);
    assert!((gm_a / gm_b - PAPER_PLAIN_GM.2).abs() < 0.02);
}

#[test]
fn tables_4_5_6_reference_clusterings_reproduce_every_published_row() {
    let speedups = SpeedupTable::paper_exact();
    for ch in Characterization::paper_set() {
        let table = ScoreTable::compute(&speedups, 2..=8, Mean::Geometric, |k| {
            reference_clustering(ch, k).ok_or(CoreError::InvalidClusters { reason: "missing" })
        })
        .unwrap();
        for &(k, a, b, ratio) in &paper_hgm_table(ch).unwrap() {
            let row = table.row(k).unwrap();
            assert!((row.score_a - a).abs() < 0.02, "{ch} k={k} A");
            assert!((row.score_b - b).abs() < 0.04, "{ch} k={k} B");
            assert!((row.ratio() - ratio).abs() < 0.03, "{ch} k={k} ratio");
        }
    }
}

#[test]
fn figures_scimark_coagulation_through_full_pipeline() {
    // Figures 3, 5, 7 / dendrograms 4, 6, 8: SciMark2 forms an exclusive
    // cluster under every characterization, now via the complete simulated
    // pipeline (execution noise -> counters -> SOM -> clustering).
    for ch in Characterization::paper_set() {
        let analysis = SuiteAnalysis::paper(ch).unwrap();
        let mut sm: Vec<usize> = SCIMARK2.to_vec();
        sm.sort_unstable();
        let found = (2..=8).any(|k| {
            analysis
                .pipeline()
                .clusters(k)
                .unwrap()
                .clusters()
                .iter()
                .any(|c| {
                    let mut s = c.clone();
                    s.sort_unstable();
                    s == sm
                })
        });
        assert!(found, "{ch}: no exclusive SciMark2 cluster in any cut");
    }
}

#[test]
fn figure7_scimark_single_cell_under_method_utilization() {
    let analysis = SuiteAnalysis::paper(Characterization::MethodUtilization).unwrap();
    let pos = analysis.pipeline().positions();
    for w in SCIMARK2 {
        assert_eq!(pos.row(w), pos.row(SCIMARK2[0]));
    }
}

#[test]
fn hgm_converges_to_plain_gm_at_full_granularity() {
    // Section II: the hierarchical mean "gracefully degenerates to the plain
    // geometric mean" with singleton clusters.
    let speedups = SpeedupTable::paper_exact();
    let singletons: Vec<Vec<usize>> = (0..13).map(|i| vec![i]).collect();
    for machine in Machine::COMPARISON {
        let xs = speedups.speedups(machine);
        let h = hgm(xs, &singletons).unwrap();
        let plain = Mean::Geometric.compute(xs).unwrap();
        assert!((h - plain).abs() < 1e-12);
    }
}

#[test]
fn machine_b_clustering_flattens_the_ratio() {
    // Table V's pattern: under machine B's clustering, the HGM ratio falls
    // toward (and below) the plain ratio at larger k, unlike machine A's.
    let analysis = SuiteAnalysis::paper(Characterization::SarCounters(Machine::B)).unwrap();
    let late_ratio_mean: f64 = analysis
        .scores()
        .rows()
        .iter()
        .filter(|r| r.k >= 5)
        .map(|r| r.ratio())
        .sum::<f64>()
        / 4.0;
    assert!(
        late_ratio_mean < analysis.scores().plain_ratio() + 0.01,
        "late ratios {late_ratio_mean} should sit at or below plain"
    );
}

#[test]
fn full_study_deterministic_across_processes() {
    // Everything derives from fixed seeds: two runs agree bit-for-bit.
    for ch in Characterization::paper_set() {
        let a = SuiteAnalysis::paper(ch).unwrap();
        let b = SuiteAnalysis::paper(ch).unwrap();
        assert_eq!(a.scores().rows(), b.scores().rows());
        assert_eq!(a.pipeline().positions(), b.pipeline().positions());
        assert_eq!(a.recommended_k(), b.recommended_k());
    }
}
