//! Ablation studies as tests: quantify the design choices DESIGN.md calls
//! out, using agreement with the recovered reference clusterings as the
//! quality metric.

use hiermeans::cluster::{agglomerative, ClusterAssignment, Linkage};
use hiermeans::core::pipeline::{run_pipeline, run_without_som, PipelineConfig};
use hiermeans::linalg::distance::Metric;
use hiermeans::linalg::pca::Pca;
use hiermeans::workload::charvec::CharacteristicVectors;
use hiermeans::workload::hprof::HprofCollector;
use hiermeans::workload::measurement::{reference_clustering, Characterization};
use hiermeans::workload::sar::SarCollector;
use hiermeans::workload::Machine;

fn reference_assignment(ch: Characterization, k: usize) -> ClusterAssignment {
    let clusters = reference_clustering(ch, k).unwrap();
    let mut labels = vec![0usize; 13];
    for (c, members) in clusters.iter().enumerate() {
        for &i in members {
            labels[i] = c;
        }
    }
    ClusterAssignment::from_labels(&labels).unwrap()
}

fn vectors(ch: Characterization) -> hiermeans::linalg::Matrix {
    match ch {
        Characterization::SarCounters(m) => {
            let ds = SarCollector::paper().collect(m).unwrap();
            CharacteristicVectors::from_sar(&ds)
                .unwrap()
                .matrix()
                .clone()
        }
        _ => {
            let ds = HprofCollector::paper().collect();
            CharacteristicVectors::from_methods(&ds)
                .unwrap()
                .matrix()
                .clone()
        }
    }
}

/// Mean Rand index against the reference chain over k = 4..=7.
fn chain_agreement(ch: Characterization, cut: impl Fn(usize) -> ClusterAssignment) -> f64 {
    let mut total = 0.0;
    for k in 4..=7 {
        let reference = reference_assignment(ch, k);
        total += cut(k).rand_index(&reference).unwrap();
    }
    total / 4.0
}

#[test]
fn raw_vector_clustering_reproduces_the_reference_chain() {
    // The characteristic vectors carry the structure: complete-linkage
    // clustering directly on them agrees near-perfectly with the recovered
    // chains on the SAR characterizations (the per-counter standardization
    // slightly reweights the latent axes, so close merge orders can swap).
    for ch in [
        Characterization::SarCounters(Machine::A),
        Characterization::SarCounters(Machine::B),
    ] {
        let v = vectors(ch);
        let dend = run_without_som(&v, &PipelineConfig::default()).unwrap();
        let agreement = chain_agreement(ch, |k| dend.cut_into(k).unwrap());
        assert!(agreement > 0.9, "{ch}: raw-vector agreement {agreement}");
    }
}

#[test]
fn som_pipeline_agreement_is_high() {
    // The SOM quantizes to grid cells, so some agreement is lost relative to
    // raw-vector clustering; it must stay high.
    for ch in Characterization::paper_set() {
        let v = vectors(ch);
        let res = run_pipeline(&v, &PipelineConfig::default()).unwrap();
        let agreement = chain_agreement(ch, |k| res.clusters(k).unwrap());
        assert!(agreement > 0.75, "{ch}: SOM-pipeline agreement {agreement}");
    }
}

#[test]
fn pca_baseline_works_but_som_handles_bit_vectors() {
    // The paper's argument for SOM over PCA (Section III-A): the bit-vector
    // method-utilization data is highly non-linear. Verify PCA reduction
    // still clusters SciMark2 together (they are identical vectors) but
    // measure both reductions' chain agreement for the record.
    let ch = Characterization::MethodUtilization;
    let v = vectors(ch);
    let pca = Pca::fit(&v, 2).unwrap();
    let reduced = pca.transform(&v).unwrap();
    let dend = agglomerative::cluster(&reduced, Metric::Euclidean, Linkage::Complete).unwrap();
    let pca_agreement = chain_agreement(ch, |k| dend.cut_into(k).unwrap());

    let res = run_pipeline(&v, &PipelineConfig::default()).unwrap();
    let som_agreement = chain_agreement(ch, |k| res.clusters(k).unwrap());

    // Both reductions must keep the (identical) SciMark2 rows together.
    let pca_cut = dend.cut_into(5).unwrap();
    let som_cut = res.clusters(5).unwrap();
    for w in 6..=9 {
        assert!(pca_cut.same_cluster(5, w));
        assert!(som_cut.same_cluster(5, w));
    }
    // Record-keeping assertion: both carry most of the chain.
    assert!(pca_agreement > 0.6, "pca agreement {pca_agreement}");
    assert!(som_agreement > 0.6, "som agreement {som_agreement}");
}

#[test]
fn linkage_ablation_all_monotone_rules_recover_the_structure() {
    // The paper chose complete linkage; on this well-separated suite every
    // monotone linkage rule recovers most of the reference chain, which is
    // itself worth recording (the choice matters more on chaining-prone
    // data — see the single-linkage chaining test below).
    let ch = Characterization::SarCounters(Machine::A);
    let v = vectors(ch);
    for linkage in [
        Linkage::Complete,
        Linkage::Single,
        Linkage::Average,
        Linkage::Ward,
    ] {
        let d = agglomerative::cluster(&v, Metric::Euclidean, linkage).unwrap();
        let agreement = chain_agreement(ch, |k| d.cut_into(k).unwrap());
        assert!(agreement > 0.85, "{linkage}: agreement {agreement}");
    }
}

#[test]
fn single_linkage_chains_where_complete_does_not() {
    // The classic failure mode motivating the paper's complete-linkage
    // choice: a bridge of intermediate points chains two groups under
    // single linkage, while complete linkage keeps them apart.
    let rows: Vec<Vec<f64>> = vec![
        vec![0.0, 0.0],
        vec![0.5, 0.0],
        vec![8.0, 0.0],
        vec![8.5, 0.0],
        // A bridge at spacing 1.1 between the groups.
        vec![1.6, 0.0],
        vec![2.7, 0.0],
        vec![3.8, 0.0],
        vec![4.9, 0.0],
        vec![6.0, 0.0],
        vec![7.1, 0.0],
    ];
    let pts = hiermeans::linalg::Matrix::from_rows(&rows).unwrap();
    let single = agglomerative::cluster(&pts, Metric::Euclidean, Linkage::Single).unwrap();
    let complete = agglomerative::cluster(&pts, Metric::Euclidean, Linkage::Complete).unwrap();
    // Under single linkage the root merge happens at the largest gap (1.1);
    // under complete linkage the two halves only merge at diameter scale.
    let root = |d: &hiermeans::cluster::Dendrogram| d.merges().last().unwrap().distance;
    assert!(root(&single) < 1.2);
    assert!(root(&complete) > 4.0);
}

#[test]
fn sample_noise_sensitivity() {
    // Doubling the SAR sampling noise must not destroy the cluster
    // structure (the latent geometry dominates).
    let ds = SarCollector::paper()
        .with_sample_noise(0.16)
        .unwrap()
        .collect(Machine::A)
        .unwrap();
    let v = CharacteristicVectors::from_sar(&ds).unwrap();
    let dend = run_without_som(v.matrix(), &PipelineConfig::default()).unwrap();
    let agreement = chain_agreement(Characterization::SarCounters(Machine::A), |k| {
        dend.cut_into(k).unwrap()
    });
    assert!(agreement > 0.9, "noisy agreement {agreement}");
}
