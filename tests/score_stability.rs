//! Score stability under measurement noise: the paper claims hierarchical
//! means "improve the accuracy and robustness of the score". Sweep the
//! execution simulator's seed (fresh run-to-run noise each time) and verify
//! both that the scoring is stable and that the published values sit inside
//! the observed spread.

use hiermeans::core::hierarchical::hgm;
use hiermeans::core::means::Mean;
use hiermeans::workload::execution::ExecutionSimulator;
use hiermeans::workload::measurement::{reference_clustering, Characterization};
use hiermeans::workload::Machine;

const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

#[test]
fn plain_gm_stable_across_measurement_noise() {
    let mut ratios = Vec::new();
    for seed in SEEDS {
        let table = ExecutionSimulator::paper()
            .with_seed(seed)
            .speedup_table()
            .unwrap();
        let a = table.geometric_mean(Machine::A).unwrap();
        let b = table.geometric_mean(Machine::B).unwrap();
        ratios.push(a / b);
    }
    let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        - ratios.iter().cloned().fold(f64::MAX, f64::min);
    // The published 1.08 sits inside the noise band, and the band is tight
    // (10 runs of 2% lognormal noise average out).
    assert!((mean - 1.083).abs() < 0.01, "mean ratio {mean}");
    assert!(spread < 0.04, "spread {spread}");
}

#[test]
fn hgm_at_reference_clustering_stable_across_noise() {
    let clusters = reference_clustering(Characterization::SarCounters(Machine::A), 6).unwrap();
    let mut scores = Vec::new();
    for seed in SEEDS {
        let table = ExecutionSimulator::paper()
            .with_seed(seed)
            .speedup_table()
            .unwrap();
        scores.push(hgm(table.speedups(Machine::A), &clusters).unwrap());
    }
    let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
    // The paper's Table IV k=6 value is 2.77.
    assert!((mean - 2.77).abs() < 0.03, "mean HGM {mean}");
    for s in &scores {
        assert!((s - mean).abs() < 0.05, "outlier {s} vs mean {mean}");
    }
}

#[test]
fn hierarchical_no_less_stable_than_plain() {
    // Coefficient of variation of the HGM across seeds stays within 2x of
    // the plain GM's (clustered scoring does not amplify measurement noise).
    let clusters = reference_clustering(Characterization::SarCounters(Machine::A), 6).unwrap();
    let mut plain = Vec::new();
    let mut hier = Vec::new();
    for seed in SEEDS {
        let table = ExecutionSimulator::paper()
            .with_seed(seed)
            .speedup_table()
            .unwrap();
        let a = table.speedups(Machine::A);
        plain.push(Mean::Geometric.compute(a).unwrap());
        hier.push(hgm(a, &clusters).unwrap());
    }
    let cv = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        v.sqrt() / m
    };
    assert!(
        cv(&hier) < 2.0 * cv(&plain) + 1e-6,
        "{} vs {}",
        cv(&hier),
        cv(&plain)
    );
}
